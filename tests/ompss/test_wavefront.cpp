// spawn_wavefront: coverage, dependency order, and a dynamic-programming
// correctness check.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace {

TEST(Wavefront, EveryCellRunsExactlyOnce) {
  oss::Runtime rt(4);
  constexpr std::size_t R = 12, C = 9;
  std::vector<std::atomic<int>> hits(R * C);
  oss::spawn_wavefront(rt, R, C, [&](std::size_t r, std::size_t c) {
    hits[r * C + c]++;
  });
  rt.taskwait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Wavefront, LeftAndTopNeighborsFinishFirst) {
  oss::Runtime rt(4);
  constexpr std::size_t R = 10, C = 10;
  std::atomic<std::uint64_t> clock{0};
  std::vector<std::uint64_t> start(R * C, 0), end(R * C, 0);
  oss::spawn_wavefront(rt, R, C, [&](std::size_t r, std::size_t c) {
    start[r * C + c] = ++clock;
    end[r * C + c] = ++clock;
  });
  rt.taskwait();
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c = 0; c < C; ++c) {
      if (c > 0) EXPECT_LT(end[r * C + c - 1], start[r * C + c]);
      if (r > 0) EXPECT_LT(end[(r - 1) * C + c], start[r * C + c]);
    }
  }
}

TEST(Wavefront, DynamicProgrammingGridMatchesSerial) {
  // grid(r,c) = grid(r-1,c) + grid(r,c-1) (+1 at the origin): Pascal-style
  // values that are wrong under any dependency violation.
  constexpr std::size_t R = 16, C = 16;
  auto cell = [](std::vector<long>& g, std::size_t r, std::size_t c) {
    const long top = r > 0 ? g[(r - 1) * C + c] : 0;
    const long left = c > 0 ? g[r * C + c - 1] : 0;
    g[r * C + c] = (r == 0 && c == 0) ? 1 : top + left;
  };

  std::vector<long> expected(R * C, 0);
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c = 0; c < C; ++c) cell(expected, r, c);
  }

  for (std::size_t threads : {1u, 2u, 4u}) {
    oss::Runtime rt(threads);
    std::vector<long> grid(R * C, 0);
    oss::spawn_wavefront(rt, R, C, [&](std::size_t r, std::size_t c) {
      cell(grid, r, c);
    });
    rt.taskwait();
    EXPECT_EQ(grid, expected) << "threads=" << threads;
  }
}

TEST(Wavefront, DegenerateShapes) {
  oss::Runtime rt(2);
  std::atomic<int> calls{0};
  oss::spawn_wavefront(rt, 0, 5, [&](std::size_t, std::size_t) { calls++; });
  oss::spawn_wavefront(rt, 5, 0, [&](std::size_t, std::size_t) { calls++; });
  rt.taskwait();
  EXPECT_EQ(calls.load(), 0);

  // 1×N and N×1 degenerate to chains.
  std::vector<int> order;
  oss::spawn_wavefront(rt, 1, 6, [&](std::size_t, std::size_t c) {
    order.push_back(static_cast<int>(c));
  });
  rt.taskwait();
  ASSERT_EQ(order.size(), 6u);
  for (int c = 0; c < 6; ++c) EXPECT_EQ(order[static_cast<std::size_t>(c)], c);
}

TEST(Wavefront, TokensOutliveTheSpawningScope) {
  // The token matrix is captured by the tasks; spawning from a scope that
  // returns before execution must be safe.
  oss::Runtime rt(1); // nothing runs until taskwait
  std::atomic<int> hits{0};
  {
    oss::spawn_wavefront(rt, 4, 4, [&](std::size_t, std::size_t) { hits++; });
    // scope ends; tokens must stay alive inside the closures
  }
  rt.taskwait();
  EXPECT_EQ(hits.load(), 16);
}

} // namespace
