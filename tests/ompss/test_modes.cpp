// Commutative and concurrent access modes (OmpSs `commutative` /
// `concurrent` clauses): ordering against regular accesses, order-freedom
// within a group, and mutual exclusion for commutative members.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace {

TEST(Commutative, MembersAreMutuallyExclusive) {
  oss::Runtime rt(4);
  long counter = 0; // non-atomic: the exclusion lock must protect it
  int region = 0;
  constexpr int kTasks = 300;
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn({oss::commutative(region)}, [&] { counter++; });
  }
  rt.taskwait();
  EXPECT_EQ(counter, kTasks);
}

TEST(Commutative, NoOverlapObservedInsideGroup) {
  oss::Runtime rt(4);
  int region = 0;
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  for (int i = 0; i < 64; ++i) {
    rt.spawn({oss::commutative(region)}, [&] {
      if (inside.fetch_add(1) != 0) overlap = true;
      for (int j = 0; j < 2000; ++j) { volatile int sink = j; (void)sink; }
      inside.fetch_sub(1);
    });
  }
  rt.taskwait();
  EXPECT_FALSE(overlap.load());
}

TEST(Commutative, GroupMembersHaveNoMutualEdges) {
  oss::Runtime rt(1); // nothing executes before we inspect stats
  int region = 0;
  rt.spawn({oss::commutative(region)}, [] {});
  rt.spawn({oss::commutative(region)}, [] {});
  rt.spawn({oss::commutative(region)}, [] {});
  const auto stats = rt.stats();
  EXPECT_EQ(stats.edges_total(), 0u) << "members must not depend on each other";
  rt.taskwait();
}

TEST(Commutative, OrderedAgainstPriorWriterAndLaterReader) {
  oss::Runtime rt(4);
  long value = 0;
  // Writer, then three commutative increments, then a reader: the reader
  // must see all three applied on top of the write.
  rt.spawn({oss::out(value)}, [&] {
    for (int j = 0; j < 50000; ++j) { volatile int sink = j; (void)sink; }
    value = 100;
  });
  for (int i = 0; i < 3; ++i) {
    rt.spawn({oss::commutative(value)}, [&] { value += 1; });
  }
  long seen = -1;
  rt.spawn({oss::in(value)}, [&] { seen = value; });
  rt.taskwait();
  EXPECT_EQ(seen, 103);
}

TEST(Commutative, ReaderClosesGroup) {
  // commutative, commutative, in, commutative: the last commutative must be
  // ordered after the reader (new group), visible as at least one WAR edge.
  oss::Runtime rt(1);
  int region = 0;
  rt.spawn({oss::commutative(region)}, [] {});
  rt.spawn({oss::commutative(region)}, [] {});
  rt.spawn({oss::in(region)}, [] {});
  rt.spawn({oss::commutative(region)}, [] {});
  const auto stats = rt.stats();
  // Edges: reader <- group (RAW x2 after dedup... one per member), and the
  // 4th task depends on the reader (WAR) + possibly the old group members.
  EXPECT_GE(stats.edges_war, 1u);
  EXPECT_GE(stats.edges_raw, 2u);
  rt.taskwait();
}

TEST(Concurrent, MembersMayRunSimultaneously) {
  // Two concurrent-group members rendezvous: each waits (bounded) for the
  // other to arrive.  If the runtime wrongly serialized them (e.g. treated
  // the group as commutative), the first member would time out alone.
  oss::Runtime rt(4);
  int region = 0;
  std::atomic<int> arrived{0};
  std::atomic<bool> overlapped{false};

  auto member = [&] {
    arrived++;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (arrived.load() < 2 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    if (arrived.load() >= 2) overlapped = true;
  };
  rt.spawn({oss::concurrent(region)}, member);
  rt.spawn({oss::concurrent(region)}, member);
  rt.taskwait();
  EXPECT_TRUE(overlapped.load())
      << "concurrent group members must be allowed to overlap";
}

TEST(Concurrent, AtomicReductionPattern) {
  oss::Runtime rt(4);
  std::atomic<long> sum{0};
  long result = 0;
  for (int i = 1; i <= 100; ++i) {
    rt.spawn({oss::concurrent(sum)}, [&sum, i] { sum += i; });
  }
  // The reader is ordered after the whole concurrent group.
  rt.spawn({oss::in(sum), oss::out(result)}, [&] { result = sum.load(); });
  rt.taskwait();
  EXPECT_EQ(result, 5050);
}

TEST(Concurrent, WriterAfterGroupWaitsForAllMembers) {
  oss::Runtime rt(4);
  std::atomic<int> done{0};
  int region = 0;
  int observed = -1;
  for (int i = 0; i < 16; ++i) {
    rt.spawn({oss::concurrent(region)}, [&] {
      for (int j = 0; j < 20000; ++j) { volatile int sink = j; (void)sink; }
      done++;
    });
  }
  rt.spawn({oss::out(region)}, [&] { observed = done.load(); });
  rt.taskwait();
  EXPECT_EQ(observed, 16);
}

TEST(Modes, MixedModesSerializeCorrectly) {
  // inout chain interleaved with commutative groups keeps a consistent
  // total: start 0; +1 x3 (commutative); *2 (inout); +1 x3; *2 → 18.
  oss::Runtime rt(4);
  long v = 0;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 3; ++i) {
      rt.spawn({oss::commutative(v)}, [&] { v += 1; });
    }
    rt.spawn({oss::inout(v)}, [&] { v *= 2; });
  }
  rt.taskwait();
  EXPECT_EQ(v, 18);
}

TEST(Modes, CommutativeAcrossTwoRegionsTakesBothLocks) {
  // Tasks commutative on (a) and (a,b) must still exclude each other on a.
  oss::Runtime rt(4);
  int a = 0, b = 0;
  long counter = 0;
  for (int i = 0; i < 100; ++i) {
    if (i % 2 == 0) {
      rt.spawn({oss::commutative(a)}, [&] { counter++; });
    } else {
      rt.spawn({oss::commutative(a), oss::commutative(b)}, [&] { counter++; });
    }
  }
  rt.taskwait();
  EXPECT_EQ(counter, 100);
}

TEST(Modes, ModeNamesIncludeNewModes) {
  EXPECT_STREQ(oss::mode_name(oss::Mode::Commutative), "commutative");
  EXPECT_STREQ(oss::mode_name(oss::Mode::Concurrent), "concurrent");
  EXPECT_TRUE(oss::mode_writes(oss::Mode::Commutative));
  EXPECT_TRUE(oss::mode_writes(oss::Mode::Concurrent));
  EXPECT_FALSE(oss::mode_writes(oss::Mode::In));
}

} // namespace
