// Task-pool behaviour: freelist reuse, overflow bounds, refcount lifecycle
// with pooling on, OSS_POOL=off parity, and the zero-allocation proof for
// the warmed steady-state spawn loop.
//
// The proof works by interposing every global operator new variant in this
// binary and counting calls inside a marked window.  The interposer is
// compiled out under ASan/TSan (the sanitizer runtimes own the allocator
// there and interposing would fight them); the allocation-count tests skip
// themselves in those builds, the behavioural tests still run.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <tuple>
#include <vector>

#include "env_config.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define OSS_POOL_TEST_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define OSS_POOL_TEST_SANITIZED 1
#endif
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void count_alloc() {
  if (g_counting.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
}
} // namespace

#ifndef OSS_POOL_TEST_SANITIZED

namespace {
void* counted_alloc(std::size_t n) {
  count_alloc();
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  count_alloc();
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n ? n : align) != 0) throw std::bad_alloc();
  return p;
}
} // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  count_alloc();
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  count_alloc();
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif // !OSS_POOL_TEST_SANITIZED

namespace {

constexpr bool interposer_active() {
#ifdef OSS_POOL_TEST_SANITIZED
  return false;
#else
  return true;
#endif
}

/// Allocations observed while running `fn`.
template <class F>
std::uint64_t count_allocs(F&& fn) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_seq_cst);
  fn();
  g_counting.store(false, std::memory_order_seq_cst);
  return g_alloc_count.load(std::memory_order_relaxed);
}

oss::RuntimeConfig pool_config(std::size_t threads, bool pool) {
  oss::RuntimeConfig cfg = oss_test::env_config(threads);
  cfg.pool = pool;
  return cfg;
}

// --- zero-allocation proof -------------------------------------------------

TEST(TaskPoolAlloc, WarmedSpawnLoopIsAllocationFree) {
  if (!interposer_active()) GTEST_SKIP() << "allocator owned by sanitizer";
  oss::Runtime rt(pool_config(1, /*pool=*/true));
  long x = 0;
  auto round = [&] {
    for (int i = 0; i < 64; ++i)
      rt.task("w").inout(x).spawn([&x] { ++x; });
    rt.taskwait();
  };
  // Warm every per-thread cache, scheduler ring, successor vector and
  // interval-map pool this loop touches.
  for (int r = 0; r < 50; ++r) round();
  const std::uint64_t n = count_allocs([&] {
    for (int r = 0; r < 20; ++r) round();
  });
  EXPECT_EQ(n, 0u) << "steady-state spawn cycle hit the global allocator";
  EXPECT_EQ(x, 70 * 64);
}

TEST(TaskPoolAlloc, ShimAndBuilderSpawnAllocateIdentically) {
  if (!interposer_active()) GTEST_SKIP() << "allocator owned by sanitizer";
  oss::Runtime rt(pool_config(1, /*pool=*/true));
  long x = 0;
  auto via_builder = [&] {
    for (int i = 0; i < 64; ++i)
      rt.task().spawn([&x] { ++x; });
    rt.taskwait();
  };
  auto via_shim = [&] {
    for (int i = 0; i < 64; ++i)
      rt.spawn({}, [&x] { ++x; });
    rt.taskwait();
  };
  auto via_shim_accesses = [&] {
    for (int i = 0; i < 64; ++i)
      rt.spawn({oss::inout(x)}, [&x] { ++x; });
    rt.taskwait();
  };
  for (int r = 0; r < 50; ++r) {
    via_builder();
    via_shim();
    via_shim_accesses();
  }
  const std::uint64_t builder_allocs = count_allocs(via_builder);
  const std::uint64_t shim_allocs = count_allocs(via_shim);
  // The legacy shims route captures through the same inline-closure slot
  // and the same pooled spawn path as the builder: identical counts.
  EXPECT_EQ(builder_allocs, shim_allocs);
  EXPECT_EQ(builder_allocs, 0u);
  // With declared accesses the shim's only remaining allocation is the
  // caller-built AccessList vector itself (one per spawn, inherent to the
  // by-value signature); the shim adds nothing on top — the list's buffer
  // is adopted wholesale, the closure stays inline, the task is pooled.
  const std::uint64_t shim_access_allocs = count_allocs(via_shim_accesses);
  EXPECT_EQ(shim_access_allocs, 64u);
}

// --- freelist behaviour ----------------------------------------------------

TEST(TaskPool, RetiredTasksAreRecycled) {
  oss::Runtime rt(pool_config(2, /*pool=*/true));
  std::atomic<int> hits{0};
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 64; ++i) rt.spawn({}, [&] { hits++; });
    rt.taskwait();
  }
  EXPECT_EQ(hits.load(), 4 * 64);
  const oss::StatsSnapshot s = rt.stats();
  EXPECT_EQ(s.tasks_spawned, 4u * 64u);
  // After the first round the freelists are primed: later rounds reuse.
  // (Misses may be zero: the process-wide pool can already be warm from
  // earlier tests in this binary.)
  EXPECT_GT(s.tasks_recycled, 0u);
  // Every pooled acquire is either a reuse or a miss — nothing else.
  EXPECT_EQ(s.tasks_recycled + s.pool_misses, s.tasks_spawned);
}

TEST(TaskPool, PoolOffNeverRecycles) {
  oss::Runtime rt(pool_config(2, /*pool=*/false));
  std::atomic<int> hits{0};
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 64; ++i) rt.spawn({}, [&] { hits++; });
    rt.taskwait();
  }
  EXPECT_EQ(hits.load(), 4 * 64);
  const oss::StatsSnapshot s = rt.stats();
  EXPECT_EQ(s.tasks_recycled, 0u);
  EXPECT_EQ(s.pool_misses, 0u);
}

TEST(TaskPool, FreelistCrossesWorkers) {
  // Retire enough tasks on one thread to force its cache over
  // kThreadCacheCap (spilling batches to the global list), then acquire
  // from a different thread: the spilled tasks must be reused.
  constexpr std::size_t kTasks = oss::pool::kThreadCacheCap + 2 * oss::pool::kFlushBatch;
  std::thread producer([&] {
    std::vector<oss::Task*> tasks;
    for (std::size_t i = 0; i < kTasks; ++i)
      tasks.push_back(oss::pool::acquire().task);
    for (oss::Task* t : tasks) oss::pool::recycle(t);
    EXPECT_LE(oss::pool::thread_cache_size(), oss::pool::kThreadCacheCap);
  });
  producer.join();
  EXPECT_GT(oss::pool::global_pool_size(), 0u);
  std::thread consumer([&] {
    const oss::pool::AcquireResult a = oss::pool::acquire();
    EXPECT_TRUE(a.recycled);
    oss::pool::recycle(a.task);
  });
  consumer.join();
}

TEST(TaskPool, OverflowListStaysBounded) {
  // Run the cycle on a fresh thread so this test's cache churn cannot
  // leave the main thread's cache in a surprising state for other tests.
  std::thread worker([&] {
    const std::uint64_t overflow_before = oss::pool::overflow_total();
    constexpr std::size_t kTasks = oss::pool::kGlobalCap + oss::pool::kThreadCacheCap + 512;
    std::vector<oss::Task*> tasks;
    tasks.reserve(kTasks);
    for (std::size_t i = 0; i < kTasks; ++i)
      tasks.push_back(oss::pool::acquire().task);
    for (oss::Task* t : tasks) oss::pool::recycle(t);
    // More than a cache's worth retired: batches spilled to the global
    // list...
    EXPECT_GT(oss::pool::overflow_total(), overflow_before);
    // ...and both tiers respected their caps (the global list sheds
    // tasks beyond kGlobalCap by actually deleting them).
    EXPECT_LE(oss::pool::thread_cache_size(), oss::pool::kThreadCacheCap);
    EXPECT_LE(oss::pool::global_pool_size(), oss::pool::kGlobalCap);
  });
  worker.join();
}

// --- refcount lifecycle ----------------------------------------------------

TEST(TaskPool, HandleOutlivesRetirementAndRuntime) {
  // A TaskHandle pins its task via the intrusive refcount: the task must
  // not be recycled out from under the handle when it retires, and the
  // handle must stay valid after the runtime itself is gone.
  oss::TaskHandle h;
  {
    oss::Runtime rt(pool_config(2, /*pool=*/true));
    std::atomic<int> hits{0};
    h = rt.task("pinned").spawn([&] { hits++; });
    // Churn enough retired tasks through the pool that h's slot would
    // certainly be reused if the refcount failed to pin it.
    for (int i = 0; i < 512; ++i) rt.spawn({}, [&] { hits++; });
    rt.taskwait();
    EXPECT_EQ(hits.load(), 513);
    EXPECT_TRUE(h.done());
    EXPECT_EQ(h.id(), 1u);
  }
  // Runtime destroyed; the handle still owns its task.
  EXPECT_TRUE(h.valid());
  EXPECT_TRUE(h.done());
  EXPECT_EQ(h.id(), 1u);
}

TEST(TaskPool, AfterHandlesOrderAcrossRecycledTasks) {
  oss::Runtime rt(pool_config(2, /*pool=*/true));
  std::vector<int> order;
  std::mutex mu;
  auto h1 = rt.task("first").spawn([&] {
    std::lock_guard<std::mutex> l(mu);
    order.push_back(1);
  });
  // Recycle churn between declaring h1 and consuming it in .after().
  for (int i = 0; i < 256; ++i) rt.spawn({}, [] {});
  auto h2 = rt.task("second").after(h1).spawn([&] {
    std::lock_guard<std::mutex> l(mu);
    order.push_back(2);
  });
  h2.wait();
  rt.taskwait();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

// --- OSS_POOL=off parity ---------------------------------------------------

using EdgeTuple = std::tuple<std::uint64_t, std::uint64_t, int>;

// Registers a fixed program straight into a DepDomain — no execution, no
// worker threads — so the discovered edge set is exactly determined by
// the registration logic and the pooled-vs-plain map allocator under
// test, not by scheduling timing.
std::vector<EdgeTuple> run_program(bool pooled, std::size_t shards) {
  oss::DepDomain domain(shards, pooled);
  auto ctx = std::make_shared<oss::TaskContext>(shards, pooled);
  std::vector<char> arena(1 << 16);
  char* a = arena.data();
  std::uint64_t next_id = 0;
  std::vector<oss::TaskPtr> live;
  std::vector<EdgeTuple> edges;
  auto reg = [&](oss::AccessList acc) {
    oss::TaskPtr t =
        oss::make_task(++next_id, [] {}, std::move(acc), ctx, "");
    domain.register_task(
        t, [&](const oss::TaskPtr& f, const oss::TaskPtr& to,
               oss::DepKind k) {
          edges.emplace_back(f->id(), to->id(), static_cast<int>(k));
        });
    live.push_back(std::move(t));
  };
  using oss::Mode;
  for (int round = 0; round < 3; ++round) {
    // Writers over disjoint 256B windows, readers over both halves of
    // each window (forces splits), a couple of wide inout tasks spanning
    // several windows, then commutative/concurrent epochs on a shared
    // counter region — every hazard kind and the epoch machinery.
    for (int i = 0; i < 8; ++i)
      reg({oss::region(a + i * 256, 256, Mode::Out)});
    for (int i = 0; i < 8; ++i)
      reg({oss::region(a + i * 256 + 128, 128, Mode::In)});
    reg({oss::region(a, 1024, Mode::InOut)});
    reg({oss::region(a + 1024, 1024, Mode::InOut)});
    for (int i = 0; i < 4; ++i)
      reg({oss::region(a + 4096, 64, Mode::Commutative)});
    for (int i = 0; i < 4; ++i)
      reg({oss::region(a + 4096, 64, Mode::Concurrent)});
    // Retire this round's tasks at a deterministic point so the next
    // round exercises the finished-predecessor pruning paths too.
    for (auto& t : live) t->mark_finished();
    live.clear();
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

TEST(TaskPool, PoolOffMatchesPoolOnEdgeSets) {
  // OSS_POOL=off must reproduce today's allocator behavior bit-exactly;
  // pooling may never change the discovered dependency graph.  Task ids
  // are deterministic (single registering thread), so the sorted edge
  // multisets must be identical — on the single-lock fallback and on the
  // sharded registration path alike.
  for (std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    const auto off = run_program(false, shards);
    const auto on = run_program(true, shards);
    EXPECT_EQ(off, on) << "shards=" << shards;
    EXPECT_FALSE(off.empty());
  }
}

} // namespace
