// Scheduler policy tests: correctness under every policy, locality placement,
// stealing, and direct unit tests of the Scheduler class.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace {

class SchedulerPolicyTest
    : public ::testing::TestWithParam<oss::SchedulerPolicy> {};

TEST_P(SchedulerPolicyTest, DependentChainsCorrectUnderEveryPolicy) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(4);
  cfg.scheduler = GetParam();
  oss::Runtime rt(cfg);

  constexpr int kChains = 16;
  constexpr int kLinks = 30;
  std::vector<long> acc(kChains, 0);
  for (int link = 0; link < kLinks; ++link) {
    for (int c = 0; c < kChains; ++c) {
      long* slot = &acc[c];
      rt.spawn({oss::inout(*slot)}, [slot, link] { *slot = *slot * 3 + link; });
    }
  }
  rt.taskwait();

  long expected = 0;
  for (int link = 0; link < kLinks; ++link) expected = expected * 3 + link;
  for (int c = 0; c < kChains; ++c) EXPECT_EQ(acc[c], expected) << "chain " << c;
}

TEST_P(SchedulerPolicyTest, IndependentTasksAllRun) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(3);
  cfg.scheduler = GetParam();
  oss::Runtime rt(cfg);
  std::atomic<int> hits{0};
  for (int i = 0; i < 500; ++i) rt.spawn({}, [&] { hits++; });
  rt.taskwait();
  EXPECT_EQ(hits.load(), 500);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedulerPolicyTest,
                         ::testing::Values(oss::SchedulerPolicy::Fifo,
                                           oss::SchedulerPolicy::Locality,
                                           oss::SchedulerPolicy::WorkStealing),
                         [](const auto& info) {
                           return std::string(oss::to_string(info.param));
                         });

TEST(SchedulerStats, LocalityPolicyUsesLocalQueuesForChains) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.scheduler = oss::SchedulerPolicy::Locality;
  oss::Runtime rt(cfg);
  int token = 0;
  for (int i = 0; i < 100; ++i) {
    rt.spawn({oss::inout(token)}, [] { for (int j = 0; j < 100; ++j) { volatile int sink = j; (void)sink; } });
  }
  rt.taskwait();
  const auto stats = rt.stats();
  // Each unblocked chain link lands in the finisher's local queue.
  EXPECT_GT(stats.local_pops, 0u);
}

TEST(SchedulerStats, FifoPolicyNeverUsesLocalQueues) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.scheduler = oss::SchedulerPolicy::Fifo;
  oss::Runtime rt(cfg);
  int token = 0;
  for (int i = 0; i < 100; ++i) {
    rt.spawn({oss::inout(token)}, [] {});
  }
  rt.taskwait();
  const auto stats = rt.stats();
  EXPECT_EQ(stats.local_pops, 0u);
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_GT(stats.global_pops, 0u);
}

// --- direct Scheduler unit tests -------------------------------------------
//
// These drive the policy objects single-threadedly through the factory; the
// owner-thread discipline of the lock-free deques is irrelevant without
// concurrency, so calling enqueue/pick for several worker ids from this one
// thread is fine.

oss::TaskPtr dummy_task(std::uint64_t id) {
  static auto ctx = std::make_shared<oss::TaskContext>();
  return oss::make_task(id, [] {}, oss::AccessList{}, ctx, "");
}

TEST(SchedulerUnit, FifoIsFirstInFirstOut) {
  auto s = oss::Scheduler::create(oss::SchedulerPolicy::Fifo, 2);
  oss::Stats stats(2);
  s->enqueue_spawned(dummy_task(1), 0);
  s->enqueue_spawned(dummy_task(2), 0);
  s->enqueue_unblocked(dummy_task(3), 1);
  EXPECT_EQ(s->pick(0, stats)->id(), 1u);
  EXPECT_EQ(s->pick(1, stats)->id(), 2u);
  EXPECT_EQ(s->pick(0, stats)->id(), 3u);
  EXPECT_EQ(s->pick(0, stats), nullptr);
}

TEST(SchedulerUnit, LocalityUnblockedGoesToFinisherHotEnd) {
  auto s = oss::Scheduler::create(oss::SchedulerPolicy::Locality, 2);
  oss::Stats stats(2);
  s->enqueue_unblocked(dummy_task(10), 1);
  s->enqueue_unblocked(dummy_task(11), 1);
  // Worker 1 pops LIFO: most recently unblocked first.
  EXPECT_EQ(s->pick(1, stats)->id(), 11u);
  EXPECT_EQ(s->pick(1, stats)->id(), 10u);
}

TEST(SchedulerUnit, IdleWorkerStealsFromVictimColdEnd) {
  auto s = oss::Scheduler::create(oss::SchedulerPolicy::Locality, 2);
  oss::Stats stats(2);
  s->enqueue_unblocked(dummy_task(20), 1);
  s->enqueue_unblocked(dummy_task(21), 1);
  // Worker 0 has nothing local and the global queue is empty: steals the
  // oldest entry from worker 1.
  const auto t = s->pick(0, stats);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->id(), 20u);
  EXPECT_EQ(stats.snapshot().steals, 1u);
}

TEST(SchedulerUnit, NonWorkerThreadsUseGlobalAndSteal) {
  auto s = oss::Scheduler::create(oss::SchedulerPolicy::WorkStealing, 2);
  oss::Stats stats(2);
  s->enqueue_spawned(dummy_task(30), -1); // foreign spawner -> global
  EXPECT_EQ(s->pick(-1, stats)->id(), 30u);
  s->enqueue_unblocked(dummy_task(31), 0);
  EXPECT_EQ(s->pick(-1, stats)->id(), 31u); // stolen
}

TEST(SchedulerUnit, QueuedCountsAllQueues) {
  auto s = oss::Scheduler::create(oss::SchedulerPolicy::WorkStealing, 2);
  oss::Stats stats(2);
  EXPECT_EQ(s->queued(), 0u);
  s->enqueue_spawned(dummy_task(1), -1);
  s->enqueue_unblocked(dummy_task(2), 0);
  s->enqueue_unblocked(dummy_task(3), 1);
  EXPECT_EQ(s->queued(), 3u);
  (void)s->pick(0, stats);
  EXPECT_EQ(s->queued(), 2u);
}

TEST(SchedulerUnit, FailedStealSweepIsCounted) {
  auto s = oss::Scheduler::create(oss::SchedulerPolicy::WorkStealing, 2,
                                  /*steal_tries=*/3);
  oss::Stats stats(2);
  EXPECT_EQ(s->pick(0, stats), nullptr); // nothing anywhere
  EXPECT_EQ(stats.snapshot().steals_failed, 1u);
  EXPECT_EQ(stats.snapshot().steals, 0u);
}

TEST(SchedulerUnit, SpawnedTaskGoesToSpawnerDequeUnderWorkStealing) {
  auto s = oss::Scheduler::create(oss::SchedulerPolicy::WorkStealing, 2);
  oss::Stats stats(2);
  s->enqueue_spawned(dummy_task(40), 0);
  // Worker 0 takes it from its own deque (local pop, not a global pop).
  EXPECT_EQ(s->pick(0, stats)->id(), 40u);
  EXPECT_EQ(stats.snapshot().local_pops, 1u);
  EXPECT_EQ(stats.snapshot().global_pops, 0u);
}

} // namespace
