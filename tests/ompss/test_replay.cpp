// oss::replay (graph capture + replay, docs/replay.md):
//
//   * edge-multiset parity — the captured structure must equal a direct,
//     deterministic DepDomain registration of the same program, across
//     OSS_DEP_SHARDS ∈ {1, 8} × OSS_POOL ∈ {on, off}
//   * the dep-domain bypass proof — a warmed replay performs zero
//     register_task calls (the dep_single/multi_shard counters stay flat)
//   * binder rebinding, throwing bodies, runtime-restart rejection,
//     concurrent replay of disjoint graphs, capture-scope contract errors
//   * observability parity — replayed tasks still emit Spawn/Ready/RunSpan
//     trace events and profile rows while performing zero label interning
//   * the zero-allocation proof for the warmed replay loop (same operator
//     new interposer as test_task_pool.cpp; compiled out under sanitizers)
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include "apps/opgraph/opgraph_app.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "env_config.hpp"

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define OSS_REPLAY_TEST_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define OSS_REPLAY_TEST_SANITIZED 1
#endif
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void count_alloc() {
  if (g_counting.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
}
} // namespace

#ifndef OSS_REPLAY_TEST_SANITIZED

namespace {
void* counted_alloc(std::size_t n) {
  count_alloc();
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  count_alloc();
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n ? n : align) != 0) throw std::bad_alloc();
  return p;
}
} // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  count_alloc();
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  count_alloc();
  return std::malloc(n ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_aligned_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif // !OSS_REPLAY_TEST_SANITIZED

namespace {

using oss::Access;
using oss::DepKind;
using oss::GraphCapture;
using oss::ReplayGraph;
using oss::Runtime;
using oss::RuntimeConfig;

constexpr bool interposer_active() {
#ifdef OSS_REPLAY_TEST_SANITIZED
  return false;
#else
  return true;
#endif
}

template <class F>
std::uint64_t count_allocs(F&& fn) {
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_seq_cst);
  fn();
  g_counting.store(false, std::memory_order_seq_cst);
  return g_alloc_count.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Parity program: a heterogeneous access mix over a few variables —
// writers, double readers, read-modify-writers, a fan-in reduction, and a
// commutative pair — declared once and driven through both the direct
// DepDomain path (deterministic reference) and the capture path.
// ---------------------------------------------------------------------------

struct ProgramTask {
  std::string label;
  oss::AccessList accesses;
};

struct ParityBuffers {
  std::array<double, 4> x{};
  double sum = 0;
  double comm = 0;
};

std::vector<ProgramTask> parity_program(ParityBuffers& b) {
  std::vector<ProgramTask> prog;
  for (std::size_t v = 0; v < b.x.size(); ++v) {
    prog.push_back({"w", {oss::out(b.x[v])}});
    prog.push_back({"r1", {oss::in(b.x[v])}});
    prog.push_back({"r2", {oss::in(b.x[v])}});
    prog.push_back({"w2", {oss::inout(b.x[v])}});
  }
  oss::AccessList fan;
  for (std::size_t v = 0; v < b.x.size(); ++v) fan.push_back(oss::in(b.x[v]));
  fan.push_back(oss::out(b.sum));
  prog.push_back({"fan", std::move(fan)});
  prog.push_back({"c1", {oss::commutative(b.comm)}});
  prog.push_back({"c2", {oss::commutative(b.comm)}});
  return prog;
}

using EdgeTuple = std::tuple<std::uint32_t, std::uint32_t, int>;

/// Deterministic reference: registers the program straight into a fresh
/// DepDomain without ever finishing a task — exactly the situation the
/// capture hold-guard creates — and collects the discovered edge multiset
/// in program-index space.
std::vector<EdgeTuple> reference_edges(const std::vector<ProgramTask>& prog,
                                       std::size_t shards, bool pooled) {
  auto ctx = std::make_shared<oss::TaskContext>(shards, pooled);
  std::vector<oss::TaskPtr> tasks;
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  std::vector<EdgeTuple> edges;
  const oss::EdgeSink sink = [&](const oss::TaskPtr& from,
                                 const oss::TaskPtr& to, DepKind kind) {
    edges.emplace_back(index.at(from->id()), index.at(to->id()),
                       static_cast<int>(kind));
  };
  for (std::size_t i = 0; i < prog.size(); ++i) {
    // Null parent context: the domain keeps TaskPtr references, and a task
    // holding its context back would be a leak cycle in this harness.
    oss::TaskPtr t = oss::make_task(i + 1, [] {}, prog[i].accesses,
                                    oss::ContextPtr{}, prog[i].label);
    index.emplace(t->id(), static_cast<std::uint32_t>(i));
    t->preds.store(1, std::memory_order_relaxed); // registration guard
    ctx->domain().register_task(t, sink);
    tasks.push_back(std::move(t));
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// The same program spawned through the builder inside a capture scope;
/// returns the frozen graph's edge multiset (capture-index space == program
/// index space, spawns happen in program order).
std::vector<EdgeTuple> captured_edges(const std::vector<ProgramTask>& prog,
                                      RuntimeConfig cfg) {
  Runtime rt(cfg);
  GraphCapture cap(rt);
  for (const ProgramTask& pt : prog) {
    oss::TaskSpec spec;
    for (const Access& a : pt.accesses) spec.accesses.push_back(a);
    spec.label = pt.label;
    rt.spawn_task(std::move(spec), [] {});
  }
  ReplayGraph g = cap.finish();
  rt.taskwait();
  std::vector<EdgeTuple> edges;
  for (const ReplayGraph::Edge& e : g.edges()) {
    edges.emplace_back(e.from, e.to, static_cast<int>(e.kind));
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

RuntimeConfig replay_config(std::size_t threads, std::size_t shards,
                            bool pool) {
  RuntimeConfig cfg = oss_test::env_config(threads);
  cfg.dep_shards = shards;
  cfg.pool = pool;
  return cfg;
}

// ---------------------------------------------------------------------------
// Edge-multiset parity across the shard × pool matrix
// ---------------------------------------------------------------------------

TEST(Replay, EdgeMultisetParityAcrossShardAndPoolConfigs) {
  ParityBuffers b;
  const std::vector<ProgramTask> prog = parity_program(b);
  const std::vector<EdgeTuple> ref = reference_edges(prog, 1, false);
  ASSERT_FALSE(ref.empty());
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    for (const bool pool : {true, false}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " pool=" + std::to_string(pool));
      // The reference itself must not depend on the config either.
      EXPECT_EQ(reference_edges(prog, shards, pool), ref);
      EXPECT_EQ(captured_edges(prog, replay_config(2, shards, pool)), ref);
    }
  }
}

TEST(Replay, CapturedGraphStructureMatchesProgram) {
  ParityBuffers b;
  const std::vector<ProgramTask> prog = parity_program(b);
  Runtime rt(replay_config(1, 8, true));
  GraphCapture cap(rt);
  for (const ProgramTask& pt : prog) {
    oss::TaskSpec spec;
    for (const Access& a : pt.accesses) spec.accesses.push_back(a);
    spec.label = pt.label;
    rt.spawn_task(std::move(spec), [] {});
  }
  EXPECT_EQ(cap.captured(), prog.size());
  ReplayGraph g = cap.finish();
  rt.taskwait();
  ASSERT_EQ(g.size(), prog.size());
  for (std::size_t i = 0; i < prog.size(); ++i) {
    EXPECT_EQ(g.label(i), prog[i].label);
  }
  // In-degrees must account for every captured edge.
  std::size_t pred_sum = 0;
  for (std::size_t i = 0; i < g.size(); ++i) pred_sum += g.pred_count(i);
  EXPECT_EQ(pred_sum, g.edge_count());
  // The capture tables render like any recorded graph.
  EXPECT_NE(g.to_dot().find("digraph"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Replay execution: bypass proof, data parity, binder rebinding
// ---------------------------------------------------------------------------

TEST(Replay, WarmedReplayBypassesDepDomainAndCountsReplayedTasks) {
  Runtime rt(replay_config(2, 8, true));
  std::array<std::uint64_t, 4> a{}, c{};
  ReplayGraph g;
  {
    GraphCapture cap(rt);
    for (std::size_t i = 0; i < a.size(); ++i) {
      rt.task("produce").out(a[i]).spawn([&a, i] { a[i] += 1; });
      rt.task("consume").in(a[i]).out(c[i]).spawn([&a, &c, i] {
        c[i] = a[i] * 10;
      });
    }
    g = cap.finish();
  }
  rt.taskwait();
  const auto binder = [&](std::size_t i) -> oss::Task::Fn {
    const std::size_t slot = i / 2;
    if (i % 2 == 0) return [&a, slot] { a[slot] += 1; };
    return [&a, &c, slot] { c[slot] = a[slot] * 10; };
  };

  rt.replay(g, binder); // warm the pool / scratch
  rt.taskwait();

  const oss::StatsSnapshot before = rt.stats();
  rt.replay(g, binder);
  rt.taskwait();
  const oss::StatsSnapshot after = rt.stats();

  // The bypass proof: a warmed replay registers nothing in any dependency
  // shard — both shard counters stay exactly flat — while the replay
  // counters account for every submitted task.
  EXPECT_EQ(after.dep_single_shard, before.dep_single_shard);
  EXPECT_EQ(after.dep_multi_shard, before.dep_multi_shard);
  EXPECT_EQ(after.replayed_tasks, before.replayed_tasks + g.size());
  EXPECT_EQ(after.replay_graphs, before.replay_graphs + 1);
  EXPECT_EQ(after.tasks_spawned, before.tasks_spawned + g.size());
  EXPECT_EQ(after.tasks_executed, before.tasks_executed + g.size());
  // Bulk edge accounting: one capture's worth of edges per replay.
  EXPECT_EQ(after.edges_total(), before.edges_total() + g.edge_count());

  // Data parity: capture + 2 replays = every producer ran 3 times, and
  // each consumer observed its producer's current value (the dependency
  // held on every replay).
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], 3u);
    EXPECT_EQ(c[i], 30u);
  }
}

TEST(Replay, BinderRebindsPerIterationData) {
  Runtime rt(oss_test::env_config(2));
  std::array<int, 8> out{};
  int scale = 1;
  ReplayGraph g;
  {
    GraphCapture cap(rt);
    for (std::size_t i = 0; i < out.size(); ++i) {
      rt.task("fill").out(out[i]).spawn([&out, i, scale] {
        out[i] = static_cast<int>(i) * scale;
      });
    }
    g = cap.finish();
  }
  rt.taskwait();
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i));
  }
  // Each replay re-binds the bodies against the *current* scale — replay
  // reuses structure, never stale closures.
  for (int s : {10, 100}) {
    scale = s;
    rt.replay(g, [&](std::size_t i) -> oss::Task::Fn {
      return [&out, i, s = scale] { out[i] = static_cast<int>(i) * s; };
    });
    rt.taskwait();
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i) * s);
    }
  }
}

TEST(Replay, ReplayedDependenciesConstrainExecutionOrder) {
  // A strict chain: every link checks its predecessor's value is already
  // in place.  Any broken replay wiring shows up as a zero read.
  Runtime rt(oss_test::env_config(4));
  constexpr int kLen = 64;
  std::array<std::uint64_t, kLen> v{};
  ReplayGraph g;
  {
    GraphCapture cap(rt);
    for (int i = 0; i < kLen; ++i) {
      if (i == 0) {
        rt.task("head").out(v[0]).spawn([&v] { v[0] += 1; });
      } else {
        rt.task("link").in(v[i - 1]).out(v[i]).spawn(
            [&v, i] { v[i] = v[i - 1] + 1; });
      }
    }
    g = cap.finish();
  }
  rt.taskwait();
  const auto binder = [&](std::size_t i) -> oss::Task::Fn {
    if (i == 0) return [&v] { v[0] += 1; };
    return [&v, i] { v[i] = v[i - 1] + 1; };
  };
  for (int r = 0; r < 10; ++r) {
    rt.replay(g, binder);
    rt.taskwait();
  }
  // 11 total runs of the chain; head accumulated once per run.
  for (int i = 0; i < kLen; ++i) {
    EXPECT_EQ(v[i], static_cast<std::uint64_t>(11 + i));
  }
}

TEST(Replay, CommutativeExclusionSurvivesReplay) {
  // The captured commutative group keeps mutual exclusion on replay: the
  // unsynchronized ++ below is exactly the data race the exclusion lock
  // must prevent (the TSan leg would flag a broken carry-over even when
  // the final count happens to be right).
  Runtime rt(oss_test::env_config(4));
  constexpr int kTasks = 16;
  std::uint64_t counter = 0;
  ReplayGraph g;
  {
    GraphCapture cap(rt);
    for (int i = 0; i < kTasks; ++i) {
      oss::TaskSpec spec;
      spec.accesses.push_back(oss::commutative(counter));
      spec.label = "comm";
      rt.spawn_task(std::move(spec), [&counter] { ++counter; });
    }
    g = cap.finish();
  }
  rt.taskwait();
  const auto binder = [&](std::size_t) -> oss::Task::Fn {
    return [&counter] { ++counter; };
  };
  constexpr int kReplays = 8;
  for (int r = 0; r < kReplays; ++r) {
    rt.replay(g, binder);
    rt.taskwait();
  }
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kTasks * (kReplays + 1)));
}

// ---------------------------------------------------------------------------
// Failure modes
// ---------------------------------------------------------------------------

TEST(Replay, ThrowingReplayedTaskSurfacesAndRuntimeStaysUsable) {
  Runtime rt(oss_test::env_config(2));
  std::array<int, 3> out{};
  ReplayGraph g;
  {
    GraphCapture cap(rt);
    for (std::size_t i = 0; i < out.size(); ++i) {
      rt.task("t").out(out[i]).spawn([&out, i] { out[i] = 1; });
    }
    g = cap.finish();
  }
  rt.taskwait();

  rt.replay(g, [&](std::size_t i) -> oss::Task::Fn {
    if (i == 1) return [] { throw std::runtime_error("replayed boom"); };
    return [&out, i] { out[i] = 2; };
  });
  EXPECT_THROW(rt.taskwait(), std::runtime_error);

  // The runtime survives: ordinary spawns and further replays both work.
  int x = 0;
  rt.task("after").out(x).spawn([&x] { x = 7; });
  rt.taskwait();
  EXPECT_EQ(x, 7);
  rt.replay(g, [&](std::size_t i) -> oss::Task::Fn {
    return [&out, i] { out[i] = 3; };
  });
  rt.taskwait();
  for (int v : out) EXPECT_EQ(v, 3);
}

TEST(Replay, ReplayAfterRuntimeRestartIsRejected) {
  ReplayGraph g;
  {
    Runtime rt1(oss_test::env_config(1));
    GraphCapture cap(rt1);
    int y = 0;
    rt1.task("t").out(y).spawn([&y] { y = 1; });
    g = cap.finish();
    rt1.taskwait();
    EXPECT_TRUE(g.valid());
  }
  // A fresh runtime — even though rt1 is gone and the allocator may reuse
  // its address, the construction serial tells them apart.
  Runtime rt2(oss_test::env_config(1));
  const auto binder = [](std::size_t) -> oss::Task::Fn { return [] {}; };
  EXPECT_THROW(rt2.replay(g, binder), std::invalid_argument);
  // Invalid (default-constructed) graphs and empty binders are rejected
  // before any bookkeeping.
  EXPECT_THROW(rt2.replay(ReplayGraph{}, binder), std::invalid_argument);
}

TEST(Replay, CaptureScopeContractViolations) {
  Runtime rt(oss_test::env_config(1));
  GraphCapture cap(rt);
  // Only one scope per runtime at a time.
  EXPECT_THROW(GraphCapture second(rt), std::logic_error);
  // Undeferred (if(0)) tasks would deadlock on their own hold predecessor.
  int x = 0;
  oss::TaskSpec spec;
  spec.accesses.push_back(oss::out(x));
  spec.deferred = false;
  EXPECT_THROW(rt.spawn_task(std::move(spec), [&x] { x = 1; }),
               std::logic_error);
  ReplayGraph g = cap.finish();
  EXPECT_THROW(cap.finish(), std::logic_error);
  rt.taskwait();
}

TEST(Replay, AbandonedCaptureScopeStillRunsTheIteration) {
  Runtime rt(oss_test::env_config(2));
  std::atomic<int> ran{0};
  {
    GraphCapture cap(rt);
    for (int i = 0; i < 8; ++i) {
      rt.task("t").spawn([&ran] { ran.fetch_add(1); });
    }
    // No finish(): the scope is abandoned (as if unwinding), the captured
    // structure discarded — but the held tasks must still execute.
  }
  rt.taskwait();
  EXPECT_EQ(ran.load(), 8);
  // And the runtime accepts a new scope afterwards.  An empty capture is a
  // valid zero-task graph whose replay is a no-op.
  GraphCapture again(rt);
  ReplayGraph g = again.finish();
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.size(), 0u);
  rt.replay(g, [](std::size_t) -> oss::Task::Fn { return [] {}; });
  rt.taskwait();
}

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

TEST(Replay, ConcurrentReplayOfDisjointGraphs) {
  Runtime rt(oss_test::env_config(4));
  constexpr int kChain = 32;
  std::array<std::uint64_t, kChain> va{}, vb{};

  const auto capture_chain = [&](std::array<std::uint64_t, kChain>& v) {
    GraphCapture cap(rt);
    for (int i = 0; i < kChain; ++i) {
      if (i == 0) {
        rt.task("head").out(v[0]).spawn([&v] { v[0] += 1; });
      } else {
        rt.task("link").in(v[i - 1]).out(v[i]).spawn(
            [&v, i] { v[i] = v[i - 1] + 1; });
      }
    }
    ReplayGraph g = cap.finish();
    rt.taskwait();
    return g;
  };
  ReplayGraph ga = capture_chain(va);
  ReplayGraph gb = capture_chain(vb);

  const auto binder_for = [](std::array<std::uint64_t, kChain>& v) {
    return [&v](std::size_t i) -> oss::Task::Fn {
      if (i == 0) return [&v] { v[0] += 1; };
      return [&v, i] { v[i] = v[i - 1] + 1; };
    };
  };

  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    // Two foreign threads submit their disjoint graphs concurrently; the
    // owning thread drains the round at the barrier.
    std::thread ta([&] { rt.replay(ga, binder_for(va)); });
    std::thread tb([&] { rt.replay(gb, binder_for(vb)); });
    ta.join();
    tb.join();
    rt.barrier();
  }
  for (int i = 0; i < kChain; ++i) {
    EXPECT_EQ(va[i], static_cast<std::uint64_t>(1 + kRounds + i));
    EXPECT_EQ(vb[i], static_cast<std::uint64_t>(1 + kRounds + i));
  }
}

// ---------------------------------------------------------------------------
// Observability: trace events, profile rows, zero interning
// ---------------------------------------------------------------------------

TEST(Replay, ReplayedTasksEmitTraceAndProfileWithoutInterning) {
  RuntimeConfig cfg = oss_test::env_config(2);
  cfg.trace_mode = oss::TraceMode::Full;
  cfg.prof = true;
  Runtime rt(cfg);
  constexpr std::size_t kTasks = 6;
  std::array<int, kTasks> out{};
  ReplayGraph g;
  {
    GraphCapture cap(rt);
    for (std::size_t i = 0; i < kTasks; ++i) {
      rt.task("replayed_op").out(out[i]).spawn([&out, i] { out[i] = 1; });
    }
    g = cap.finish();
  }
  rt.taskwait();
  const auto binder = [&](std::size_t i) -> oss::Task::Fn {
    return [&out, i] { out[i] = 2; };
  };
  rt.replay(g, binder); // warm
  rt.taskwait();

  oss::TraceSystem* trace = rt.trace_system();
  oss::ProfSystem* prof = rt.prof_system();
  ASSERT_NE(trace, nullptr);
  ASSERT_NE(prof, nullptr);

  const auto count_kinds = [&] {
    std::size_t spawn = 0, ready = 0, run = 0;
    for (const auto& m : trace->merged_events()) {
      if (m.ev.kind == oss::TraceEventKind::Spawn) ++spawn;
      if (m.ev.kind == oss::TraceEventKind::Ready) ++ready;
      if (m.ev.kind == oss::TraceEventKind::RunSpan) ++run;
    }
    return std::tuple{spawn, ready, run};
  };

  const auto [spawn0, ready0, run0] = count_kinds();
  const std::uint64_t interns0 = trace->intern_calls() + prof->intern_calls();
  const std::uint64_t profile_count0 = rt.profile().tasks;

  rt.replay(g, binder);
  rt.taskwait();

  const auto [spawn1, ready1, run1] = count_kinds();
  // Replayed tasks show up in the trace like any other task: one Spawn per
  // task, one RunSpan per execution, Ready transitions for the non-roots
  // (roots are ready at submission — their Spawn event carries the flag).
  EXPECT_EQ(spawn1, spawn0 + kTasks);
  EXPECT_EQ(run1, run0 + kTasks);
  EXPECT_GE(ready1, ready0);
  // ...and in the profile.
  EXPECT_EQ(rt.profile().tasks, profile_count0 + kTasks);
  const auto labels = rt.profile().labels;
  const auto it = std::find_if(labels.begin(), labels.end(), [](const auto& l) {
    return l.name == "replayed_op";
  });
  ASSERT_NE(it, labels.end());
  EXPECT_GE(it->count, kTasks * 3); // capture + 2 replays

  // The zero-interning proof: replay reuses the hash interned at capture —
  // a warmed replay (submission + execution + retirement) performs zero
  // TraceSystem/ProfSystem::intern calls.
  EXPECT_EQ(trace->intern_calls() + prof->intern_calls(), interns0);
}

// ---------------------------------------------------------------------------
// End-to-end anchor: the opgraph app (exact uint64 arithmetic — checksums
// must be *bit-identical* across seq / fresh-resolution / replay at every
// thread count).  The runtimes inside the app read OSS_DEP_SHARDS /
// OSS_POOL etc. from the environment, so the run_matrix.sh phase-2 sweep
// fuzzes this parity across the whole shards × pool × scheduler matrix.
// ---------------------------------------------------------------------------

TEST(Replay, OpgraphChecksumParityAndBypassAcrossVariants) {
  const apps::OpGraphWorkload w =
      apps::OpGraphWorkload::make(benchcore::Scale::Tiny);
  const std::uint64_t ref = apps::opgraph_seq(w);
  const auto ops = static_cast<std::uint64_t>(w.ops_per_iteration());
  const auto iters = static_cast<std::uint64_t>(w.iters);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    oss::StatsSnapshot fresh{}, replay{};
    EXPECT_EQ(apps::opgraph_ompss(w, threads, &fresh), ref);
    EXPECT_EQ(apps::opgraph_replay(w, threads, &replay), ref);
    // Fresh resolution registers every task of every iteration; replay
    // registers only the capture iteration and replays the rest.
    EXPECT_EQ(fresh.replayed_tasks, 0u);
    EXPECT_EQ(fresh.dep_single_shard + fresh.dep_multi_shard, ops * iters);
    EXPECT_EQ(replay.replayed_tasks, ops * (iters - 1));
    EXPECT_EQ(replay.replay_graphs, iters - 1);
    EXPECT_EQ(replay.dep_single_shard + replay.dep_multi_shard, ops);
    EXPECT_EQ(replay.tasks_executed, ops * iters);
  }
}

// ---------------------------------------------------------------------------
// Zero-allocation proof for the warmed replay loop
// ---------------------------------------------------------------------------

TEST(Replay, WarmedReplaySubmissionIsAllocationFree) {
  if (!interposer_active()) {
    GTEST_SKIP() << "allocation interposer disabled under sanitizers";
  }
  RuntimeConfig cfg = replay_config(1, 8, true);
  Runtime rt(cfg);
  std::array<std::uint64_t, 8> buf{};
  ReplayGraph g;
  {
    GraphCapture cap(rt);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (i == 0) {
        rt.task("h").out(buf[0]).spawn([&buf] { buf[0] += 1; });
      } else {
        rt.task("l").in(buf[i - 1]).out(buf[i]).spawn(
            [&buf, i] { buf[i] = buf[i - 1] + 1; });
      }
    }
    g = cap.finish();
  }
  rt.taskwait();
  const auto binder = [&buf](std::size_t i) -> oss::Task::Fn {
    if (i == 0) return [&buf] { buf[0] += 1; };
    return [&buf, i] { buf[i] = buf[i - 1] + 1; };
  };
  // Warm everything: the task pool, the replay scratch vectors, the
  // scheduler queues, the trace-less spawn path.
  for (int r = 0; r < 4; ++r) {
    rt.replay(g, binder);
    rt.taskwait();
  }
  // With one thread, nothing executes during submission (worker 0 only
  // helps inside waits) — the counted window is exactly the replay array
  // walk: pool acquires, pre-wiring, guard releases, batch enqueue.
  const std::uint64_t allocs = count_allocs([&] { rt.replay(g, binder); });
  rt.taskwait();
  EXPECT_EQ(allocs, 0u);
}

} // namespace
