// Topology discovery: spec parsing (shorthand + full form), sysfs reading
// with the flat fallback, malformed-input behaviour, and the worker→node
// distribution the scheduler builds its NUMA maps from.
#include "ompss/topology.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <unistd.h>

namespace {

namespace fs = std::filesystem;

TEST(Topology, DefaultAndFlatAreSingleNode) {
  const oss::Topology def;
  EXPECT_EQ(def.num_nodes(), 1u);
  EXPECT_TRUE(def.single_node());

  const oss::Topology t = oss::Topology::flat(8);
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_TRUE(t.single_node());
  EXPECT_EQ(t.num_cpus(), 8u);
  EXPECT_EQ(t.node_of_cpu(0), 0);
  EXPECT_EQ(t.node_of_cpu(7), 0);
  EXPECT_EQ(t.node_of_cpu(8), -1);
  for (int w = 0; w < 8; ++w) EXPECT_EQ(t.node_of_worker(w, 8), 0);
}

TEST(Topology, ShorthandSpecParses) {
  const oss::Topology t = oss::Topology::from_spec("2x4");
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_FALSE(t.single_node());
  EXPECT_EQ(t.num_cpus(), 8u);
  EXPECT_EQ(t.node_of_cpu(0), 0);
  EXPECT_EQ(t.node_of_cpu(3), 0);
  EXPECT_EQ(t.node_of_cpu(4), 1);
  EXPECT_EQ(t.node_of_cpu(7), 1);
}

TEST(Topology, FullSpecParsesRangesAndSingles) {
  const oss::Topology t = oss::Topology::from_spec("0:0-2,6;1:3-5,7");
  ASSERT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.nodes()[0].cpus, (std::vector<int>{0, 1, 2, 6}));
  EXPECT_EQ(t.nodes()[1].cpus, (std::vector<int>{3, 4, 5, 7}));
  EXPECT_EQ(t.node_of_cpu(6), 0);
  EXPECT_EQ(t.node_of_cpu(7), 1);
  EXPECT_EQ(t.node_of_cpu(8), -1);
}

TEST(Topology, DenseIdsFollowOsIdOrder) {
  // Non-contiguous, out-of-order OS node ids get dense runtime indices.
  const oss::Topology t = oss::Topology::from_spec("4:4-7;2:0-3");
  ASSERT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.nodes()[0].id, 0);
  EXPECT_EQ(t.nodes()[0].os_id, 2);
  EXPECT_EQ(t.nodes()[1].id, 1);
  EXPECT_EQ(t.nodes()[1].os_id, 4);
  EXPECT_EQ(t.node_of_cpu(0), 0);
  EXPECT_EQ(t.node_of_cpu(5), 1);
}

TEST(Topology, SpecRendersAndRoundTrips) {
  const oss::Topology t = oss::Topology::from_spec("0:0-2,6;1:3-5,7");
  EXPECT_EQ(t.spec(), "0:0-2,6;1:3-5,7");
  const oss::Topology again = oss::Topology::from_spec(t.spec());
  EXPECT_EQ(again.num_nodes(), t.num_nodes());
  EXPECT_EQ(again.spec(), t.spec());
  EXPECT_EQ(oss::Topology::from_spec("2x2").spec(), "0:0-1;1:2-3");
}

TEST(Topology, MalformedSpecsThrowAndNameTheFormat) {
  for (const char* bad :
       {"", "bogus", "2x", "x4", "0x4", "2x0", "0:", "0:a-b", ":0-3",
        "0:0-3;;1:4-7", "0:3-1", "0:0-3;0:4-7" /* dup node */,
        "0:0-3;1:2-5" /* dup cpu */, "0:0-3,", "1:-3"}) {
    EXPECT_THROW(oss::Topology::from_spec(bad), std::invalid_argument)
        << "spec '" << bad << "' should be rejected";
  }
  try {
    oss::Topology::from_spec("garbage");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("garbage"), std::string::npos) << msg;
    EXPECT_NE(msg.find("NxM"), std::string::npos) << msg;
    EXPECT_NE(msg.find("OSS_TOPOLOGY"), std::string::npos) << msg;
  }
}

TEST(Topology, WorkersSpreadProportionallyAndBlockwise) {
  const oss::Topology t = oss::Topology::from_spec("2x4");
  // 4 workers over 2x4: two per node, adjacent ids share a socket.
  EXPECT_EQ(t.node_of_worker(0, 4), 0);
  EXPECT_EQ(t.node_of_worker(1, 4), 0);
  EXPECT_EQ(t.node_of_worker(2, 4), 1);
  EXPECT_EQ(t.node_of_worker(3, 4), 1);
  // 8 workers: 4 + 4.
  for (int w = 0; w < 4; ++w) EXPECT_EQ(t.node_of_worker(w, 8), 0);
  for (int w = 4; w < 8; ++w) EXPECT_EQ(t.node_of_worker(w, 8), 1);
  // 2 workers: one per node.
  EXPECT_EQ(t.node_of_worker(0, 2), 0);
  EXPECT_EQ(t.node_of_worker(1, 2), 1);
  // Oversubscribed (16 workers on 8 cpus): still a 8/8 block split.
  EXPECT_EQ(t.node_of_worker(7, 16), 0);
  EXPECT_EQ(t.node_of_worker(8, 16), 1);

  // Asymmetric nodes get proportional shares: 6 cpus vs 2 cpus, 4 workers
  // → 3 on node 0, 1 on node 1.
  const oss::Topology asym = oss::Topology::from_spec("0:0-5;1:6-7");
  EXPECT_EQ(asym.node_of_worker(0, 4), 0);
  EXPECT_EQ(asym.node_of_worker(1, 4), 0);
  EXPECT_EQ(asym.node_of_worker(2, 4), 0);
  EXPECT_EQ(asym.node_of_worker(3, 4), 1);
}

TEST(Topology, SysfsMissingDirectoryFallsBackFlat) {
  const oss::Topology t =
      oss::Topology::from_sysfs("/nonexistent/oss-topo-test");
  EXPECT_TRUE(t.single_node());
  EXPECT_GE(t.num_cpus(), 1u);
}

class SysfsTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("oss_topo_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write_node(int os_id, const std::string& cpulist) {
    const fs::path dir = root_ / ("node" + std::to_string(os_id));
    fs::create_directories(dir);
    std::ofstream(dir / "cpulist") << cpulist << "\n";
  }

  fs::path root_;
};

TEST_F(SysfsTreeTest, TwoNodeTreeParses) {
  write_node(0, "0-1");
  write_node(1, "2-3");
  // Non-node entries must be ignored (the real directory has online,
  // possible, power, ...).
  std::ofstream(root_ / "online") << "0-1\n";
  fs::create_directories(root_ / "power");

  const oss::Topology t = oss::Topology::from_sysfs(root_.string());
  ASSERT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.nodes()[0].cpus, (std::vector<int>{0, 1}));
  EXPECT_EQ(t.nodes()[1].cpus, (std::vector<int>{2, 3}));
}

TEST_F(SysfsTreeTest, MalformedCpulistFallsBackFlat) {
  write_node(0, "0-1");
  write_node(1, "zork");
  const oss::Topology t = oss::Topology::from_sysfs(root_.string());
  EXPECT_TRUE(t.single_node());
}

TEST_F(SysfsTreeTest, MemoryOnlyNodesAreSkipped) {
  write_node(0, "0-3");
  write_node(1, ""); // CPU-less memory node (e.g. CXL expander)
  const oss::Topology t = oss::Topology::from_sysfs(root_.string());
  ASSERT_EQ(t.num_nodes(), 1u);
  EXPECT_EQ(t.num_cpus(), 4u);
}

TEST_F(SysfsTreeTest, EmptyTreeFallsBackFlat) {
  const oss::Topology t = oss::Topology::from_sysfs(root_.string());
  EXPECT_TRUE(t.single_node());
  EXPECT_GE(t.num_cpus(), 1u);
}

TEST(Topology, DetectResolvesTheConfigValues) {
  EXPECT_TRUE(oss::Topology::detect("flat").single_node());
  EXPECT_EQ(oss::Topology::detect("2x4").num_nodes(), 2u);
  // "numa" and "" read the real sysfs; whatever the machine is, the result
  // must be a usable topology.
  EXPECT_GE(oss::Topology::detect("numa").num_nodes(), 1u);
  EXPECT_GE(oss::Topology::detect("").num_nodes(), 1u);
  EXPECT_THROW(oss::Topology::detect("definitely-not-a-spec"),
               std::invalid_argument);
}

} // namespace
