// spawn_for (taskloop analogue): coverage, chunking, dependency composition.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace {

TEST(Taskloop, CoversRangeExactlyOnce) {
  oss::Runtime rt(4);
  std::vector<std::atomic<int>> touched(1000);
  oss::spawn_for(rt, 0, 1000, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) touched[i]++;
  });
  rt.taskwait();
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(Taskloop, ChunkZeroTreatedAsOne) {
  oss::Runtime rt(2);
  std::atomic<int> calls{0};
  oss::spawn_for(rt, 0, 5, 0, [&](std::size_t, std::size_t) { calls++; });
  rt.taskwait();
  EXPECT_EQ(calls.load(), 5); // one task per element
}

TEST(Taskloop, EmptyRangeSpawnsNothing) {
  oss::Runtime rt(2);
  std::atomic<int> calls{0};
  oss::spawn_for(rt, 7, 7, 4, [&](std::size_t, std::size_t) { calls++; });
  rt.taskwait();
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(rt.stats().tasks_spawned, 0u);
}

TEST(Taskloop, AccessBuilderChainsConsecutiveLoops) {
  // Loop 1 writes data[i] = i; loop 2 doubles it.  The per-chunk access
  // declarations must chain chunk 2.k after chunk 1.k.
  oss::Runtime rt(4);
  std::vector<long> data(512, -1);
  oss::spawn_for(
      rt, 0, data.size(), 64,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) data[i] = static_cast<long>(i);
      },
      [&](std::size_t lo, std::size_t hi) {
        return oss::AccessList{oss::out(&data[lo], hi - lo)};
      },
      "init");
  oss::spawn_for(
      rt, 0, data.size(), 64,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) data[i] *= 2;
      },
      [&](std::size_t lo, std::size_t hi) {
        return oss::AccessList{oss::inout(&data[lo], hi - lo)};
      },
      "double");
  rt.taskwait();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], static_cast<long>(2 * i));
  }
  // And the chaining must have produced dependency edges.
  EXPECT_GT(rt.stats().edges_total(), 0u);
}

TEST(Taskloop, LabelsAppearInGraph) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.record_graph = true;
  oss::Runtime rt(cfg);
  oss::spawn_for(rt, 0, 8, 4, [](std::size_t, std::size_t) {}, nullptr,
                 "my_loop");
  rt.taskwait();
  EXPECT_NE(rt.export_graph_dot().find("my_loop"), std::string::npos);
}

} // namespace
