// Sequential Runtime generations with long-lived foreign spawner threads —
// the restart shape of a decode service (oss::service): the process keeps
// its request threads, the runtime is torn down and rebuilt underneath them.
//
// What must hold across generations:
//   * a foreign thread's cached trace/prof TLS slots must never match a new
//     system instance allocated at a reused address (epoch guards), so its
//     labels re-register and resolve by name in every generation;
//   * the refcounted SIGUSR1 handler is installed once per overlapping set
//     of watchdog runtimes and the *previous* handler is restored when the
//     last one dies;
//   * a SIGUSR1 delivered to one generation but never consumed by its
//     collector must not fire a spurious health dump in the next.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#endif

namespace {

/// One persistent thread that runs closures on demand — a stand-in for a
/// service request thread that outlives any single Runtime.
class ForeignThread {
 public:
  ForeignThread() : th_([this] { loop(); }) {}

  ~ForeignThread() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    th_.join();
  }

  /// Runs `fn` on the persistent thread; blocks until it returned.
  void run(std::function<void()> fn) {
    std::unique_lock lock(mu_);
    job_ = std::move(fn);
    cv_.notify_all();
    cv_.wait(lock, [this] { return job_ == nullptr; });
  }

 private:
  void loop() {
    std::unique_lock lock(mu_);
    while (true) {
      cv_.wait(lock, [this] { return stop_ || job_ != nullptr; });
      if (stop_) return;
      std::function<void()> fn = std::move(job_);
      lock.unlock();
      fn();
      lock.lock();
      job_ = nullptr;
      cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::function<void()> job_;
  bool stop_ = false;
  std::thread th_;
};

oss::RuntimeConfig base_config() {
  oss::RuntimeConfig cfg;
  cfg.num_threads = 2;
  return cfg;
}

TEST(Generations, ForeignSpawnerProfLabelsResolveInEveryGeneration) {
  // The same label string, interned from the same foreign thread, into
  // sequential ProfSystems (which the allocator will typically place at the
  // same address).  Without the epoch guard the second generation's intern
  // hits the stale TLS cache, skips registration, and the snapshot can only
  // report the raw hash ("#xxxxxxxx").
  ForeignThread spawner;
  for (int gen = 0; gen < 4; ++gen) {
    oss::RuntimeConfig cfg = base_config();
    cfg.prof = true;
    oss::Runtime rt(cfg);
    spawner.run([&rt] {
      for (int i = 0; i < 8; ++i) {
        rt.task("svc_request").spawn([] {});
      }
    });
    rt.barrier();

    const oss::ProfileSnapshot snap = rt.profile();
    bool found = false;
    for (const auto& label : snap.labels) {
      if (label.name == "svc_request") {
        found = true;
        EXPECT_EQ(label.count, 8u) << "generation " << gen;
      }
      EXPECT_NE(label.name[0], '#')
          << "generation " << gen << ": unresolved label " << label.name;
    }
    EXPECT_TRUE(found) << "generation " << gen
                       << ": label 'svc_request' missing from profile";
  }
}

TEST(Generations, ForeignSpawnerTraceSlotsRebindAcrossGenerations) {
  // Same shape for the trace layer (its epoch guard predates this test):
  // a foreign thread emitting into sequential TraceSystems must land every
  // generation's events in that generation's rings, not a stale slot.
  ForeignThread spawner;
  for (int gen = 0; gen < 4; ++gen) {
    oss::RuntimeConfig cfg = base_config();
    cfg.trace_mode = oss::TraceMode::Full;
    cfg.record_trace = true;
    oss::Runtime rt(cfg);
    spawner.run([&rt] {
      for (int i = 0; i < 8; ++i) {
        rt.task("svc_trace").spawn([] {});
      }
    });
    rt.barrier();
    const oss::StatsSnapshot stats = rt.stats();
    EXPECT_EQ(stats.tasks_executed, 8u) << "generation " << gen;
  }
}

TEST(Generations, SequentialRuntimesKeepTaskAccountingBalanced) {
  // The full construct/spawn/destruct cycle, foreign spawner included, must
  // leak nothing between generations: every spawn of a generation retires
  // within it.
  ForeignThread spawner;
  for (int gen = 0; gen < 3; ++gen) {
    oss::Runtime rt(base_config());
    spawner.run([&rt] {
      std::atomic<int> ran{0};
      for (int i = 0; i < 32; ++i) {
        rt.task("gen_task").spawn([&ran] { ran.fetch_add(1); });
      }
      rt.barrier();
      EXPECT_EQ(ran.load(), 32);
    });
    EXPECT_EQ(rt.pending_tasks(), 0u);
    const oss::StatsSnapshot stats = rt.stats();
    EXPECT_EQ(stats.tasks_spawned, stats.tasks_executed);
  }
}

#if defined(__unix__) || defined(__APPLE__)

extern "C" void generations_prev_handler(int) {}

TEST(Generations, Sigusr1HandlerIsRestoredAfterLastWatchdogRuntime) {
  // Install our own handler, run a watchdog runtime (which installs the
  // runtime's handler over it), and check ours is back after destruction —
  // the service-restart case where a dangling handler would fire into a
  // destroyed runtime.
  struct sigaction mine {};
  mine.sa_handler = &generations_prev_handler;
  sigemptyset(&mine.sa_mask);
  struct sigaction saved {};
  ASSERT_EQ(sigaction(SIGUSR1, &mine, &saved), 0);

  for (int gen = 0; gen < 2; ++gen) {
    {
      oss::RuntimeConfig cfg = base_config();
      cfg.watchdog_ms = 200;
      oss::Runtime rt(cfg);
      struct sigaction during {};
      ASSERT_EQ(sigaction(SIGUSR1, nullptr, &during), 0);
      EXPECT_NE(during.sa_handler, &generations_prev_handler)
          << "runtime did not install its handler";
    }
    struct sigaction after {};
    ASSERT_EQ(sigaction(SIGUSR1, nullptr, &after), 0);
    EXPECT_EQ(after.sa_handler, &generations_prev_handler)
        << "generation " << gen << " did not restore the previous handler";
  }

  ASSERT_EQ(sigaction(SIGUSR1, &saved, nullptr), 0);
}

TEST(Generations, PendingSigusr1DoesNotLeakIntoTheNextGeneration) {
  // Generation A gets a SIGUSR1 its collector never consumes (tick period
  // far in the future); generation B polls fast and must NOT see it.
  {
    oss::RuntimeConfig cfg = base_config();
    cfg.watchdog_ms = 60000; // collector wakes via CV on destruction
    oss::Runtime a(cfg);
    ASSERT_EQ(raise(SIGUSR1), 0);
    // Destroyed with the flag still pending.
  }
  oss::RuntimeConfig cfg = base_config();
  cfg.watchdog_ms = 20;
  oss::Runtime b(cfg);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(b.health_dumps(), 0u)
      << "a SIGUSR1 delivered to a previous runtime fired a dump here";
}

#endif // __unix__ || __APPLE__

} // namespace
