// taskwait / taskwait_on / barrier semantics, nested tasks, and exception
// propagation.
#include "ompss/ompss.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

namespace {

TEST(Taskwait, WaitsForAllDirectChildren) {
  oss::Runtime rt(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    rt.spawn({}, [&] {
      for (int j = 0; j < 1000; ++j) { volatile int sink = j; (void)sink; }
      done++;
    });
  }
  rt.taskwait();
  EXPECT_EQ(done.load(), 64);
}

TEST(Taskwait, NestedTasksWaitTheirOwnChildren) {
  oss::Runtime rt(4);
  std::atomic<int> inner_done{0};
  std::atomic<bool> inner_was_complete_at_parent_taskwait{false};

  rt.spawn({}, [&] {
    auto* inner_rt = oss::Runtime::current();
    for (int i = 0; i < 10; ++i) {
      inner_rt->spawn({}, [&] { inner_done++; });
    }
    inner_rt->taskwait(); // waits only this task's children
    inner_was_complete_at_parent_taskwait = (inner_done.load() == 10);
  });
  rt.taskwait();
  EXPECT_TRUE(inner_was_complete_at_parent_taskwait.load());
  EXPECT_EQ(inner_done.load(), 10);
}

TEST(Taskwait, ParentTaskwaitDoesNotCoverGrandchildrenAutomatically) {
  // taskwait waits for *direct* children.  A child that spawns work and
  // returns without its own taskwait leaves grandchildren pending; only the
  // full barrier guarantees global quiescence.
  oss::Runtime rt(4);
  std::atomic<int> grandchild_done{0};
  rt.spawn({}, [&] {
    oss::Runtime::current()->spawn({}, [&] {
      for (int j = 0; j < 200000; ++j) { volatile int sink = j; (void)sink; }
      grandchild_done++;
    });
    // no inner taskwait
  });
  rt.barrier(); // must cover everything, including the grandchild
  EXPECT_EQ(grandchild_done.load(), 1);
}

TEST(Taskwait, TaskwaitOnWaitsOnlyForMatchingRegion) {
  oss::Runtime rt(4);
  int fast = 0;
  int slow = 0;
  std::atomic<bool> slow_finished{false};

  rt.spawn({oss::out(slow)}, [&] {
    for (int j = 0; j < 3000000; ++j) { volatile int sink = j; (void)sink; }
    slow = 1;
    slow_finished = true;
  });
  rt.spawn({oss::out(fast)}, [&] { fast = 1; });

  rt.taskwait_on(fast);
  EXPECT_EQ(fast, 1);
  // The slow task is very likely still running; we only assert that
  // taskwait_on did not require it (no deadlock, fast path observed).
  rt.taskwait();
  EXPECT_TRUE(slow_finished.load());
  EXPECT_EQ(slow, 1);
}

TEST(Taskwait, TaskwaitOnUnknownRegionReturnsImmediately) {
  oss::Runtime rt(2);
  int never_used = 0;
  rt.taskwait_on(never_used); // nothing registered: must not hang
  SUCCEED();
}

TEST(Taskwait, TaskwaitOnSupportsListingOneLoopControl) {
  // The paper's use: `taskwait on (*rc)` after spawning each iteration's
  // read task, so the EOF check sees the updated reader context.
  oss::Runtime rt(4);
  struct ReadCtx { int pos = 0; int eof_at = 5; } rc;
  int frames_read = 0;
  while (true) {
    rt.spawn({oss::inout(rc)}, [&rc] { rc.pos++; });
    rt.taskwait_on(rc);
    frames_read++;
    if (rc.pos >= rc.eof_at) break;
  }
  rt.taskwait();
  EXPECT_EQ(frames_read, 5);
  EXPECT_EQ(rc.pos, 5);
}

TEST(Taskwait, BarrierDrainsEverything) {
  oss::Runtime rt(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) rt.spawn({}, [&] { done++; });
  rt.barrier();
  EXPECT_EQ(done.load(), 100);
  EXPECT_EQ(rt.pending_tasks(), 0u);
}

TEST(Taskwait, PollingWaiterExecutesTasks) {
  // With one thread, the only executor is the waiting thread itself.
  oss::Runtime rt(1);
  int x = 0;
  rt.spawn({}, [&] { x = 1; });
  rt.taskwait();
  EXPECT_EQ(x, 1);
  const auto stats = rt.stats();
  ASSERT_EQ(stats.per_worker_executed.size(), 1u);
  EXPECT_EQ(stats.per_worker_executed[0], 1u);
}

// --- exception propagation -------------------------------------------------

TEST(TaskExceptions, RethrownAtTaskwait) {
  oss::Runtime rt(2);
  rt.spawn({}, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(rt.taskwait(), std::runtime_error);
}

TEST(TaskExceptions, FirstExceptionWinsOthersSwallowed) {
  oss::Runtime rt(2);
  for (int i = 0; i < 10; ++i) {
    rt.spawn({}, [] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(rt.taskwait(), std::runtime_error);
  // After the throw, the runtime must still be usable.
  std::atomic<int> ok{0};
  rt.spawn({}, [&] { ok++; });
  rt.taskwait();
  EXPECT_EQ(ok.load(), 1);
}

TEST(TaskExceptions, ExceptionDoesNotBlockSuccessors) {
  // A task that throws still "finishes"; its dependents must run (they see
  // whatever partial state the failed task left, as in OmpSs).
  oss::Runtime rt(2);
  int x = 0;
  std::atomic<bool> dependent_ran{false};
  rt.spawn({oss::out(x)}, [&]() -> void {
    x = 7;
    throw std::runtime_error("late failure");
  });
  rt.spawn({oss::in(x)}, [&] { dependent_ran = true; });
  EXPECT_THROW(rt.taskwait(), std::runtime_error);
  EXPECT_TRUE(dependent_ran.load());
}

TEST(TaskExceptions, NestedChildExceptionSurfacesAtInnerTaskwait) {
  oss::Runtime rt(2);
  std::atomic<bool> inner_caught{false};
  rt.spawn({}, [&] {
    auto* r = oss::Runtime::current();
    r->spawn({}, [] { throw std::logic_error("inner"); });
    try {
      r->taskwait();
    } catch (const std::logic_error&) {
      inner_caught = true;
    }
  });
  rt.taskwait();
  EXPECT_TRUE(inner_caught.load());
}

TEST(TaskExceptions, BarrierRethrowsRootException) {
  oss::Runtime rt(2);
  rt.spawn({}, [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(rt.barrier(), std::runtime_error);
}

// --- blocking wait policy ---------------------------------------------------

TEST(BlockingWait, BarrierAndTaskwaitWorkWithBlockingPolicy) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(4);
  cfg.wait_policy = oss::WaitPolicy::Blocking;
  oss::Runtime rt(cfg);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) rt.spawn({}, [&] { done++; });
  rt.taskwait();
  EXPECT_EQ(done.load(), 200);
  for (int i = 0; i < 200; ++i) rt.spawn({}, [&] { done++; });
  rt.barrier();
  EXPECT_EQ(done.load(), 400);
}

TEST(BlockingWait, SingleThreadFallsBackToPolling) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(1);
  cfg.wait_policy = oss::WaitPolicy::Blocking;
  oss::Runtime rt(cfg);
  int x = 0;
  rt.spawn({}, [&] { x = 5; });
  rt.taskwait(); // must not deadlock
  EXPECT_EQ(x, 5);
}

TEST(BlockingWait, DependentChainsCompleteUnderBlockingPolicy) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(3);
  cfg.wait_policy = oss::WaitPolicy::Blocking;
  oss::Runtime rt(cfg);
  int token = 0;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    rt.spawn({oss::inout(token)}, [&order, i] { order.push_back(i); });
  }
  rt.taskwait();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

} // namespace
