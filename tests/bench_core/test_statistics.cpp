#include "bench_core/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace benchcore;

TEST(Statistics, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({5}), 5.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Statistics, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({7}), 7.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Statistics, MedianDoesNotRequireSortedInput) {
  EXPECT_DOUBLE_EQ(median({9, 1, 5, 2, 8}), 5.0);
}

TEST(Statistics, StddevSampleFormula) {
  // Sample stddev of {2,4,4,4,5,5,7,9} is 2.138... (divide by n-1).
  const double s = stddev({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(s, 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(stddev({42}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Statistics, GeomeanMatchesPaperStyleAggregation) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
  // Speedup 2x and slowdown 0.5x must cancel (the reason the paper uses
  // geometric means).
  EXPECT_NEAR(geomean({2.0, 0.5}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Statistics, Minimum) {
  EXPECT_DOUBLE_EQ(minimum({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(minimum({}), 0.0);
}

} // namespace
