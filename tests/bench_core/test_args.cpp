#include "bench_core/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using benchcore::Args;

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, ParsesKeyValueAndFlags) {
  const Args a = make({"--reps=5", "--verbose", "positional"});
  EXPECT_TRUE(a.has("reps"));
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("missing"));
  EXPECT_EQ(a.get("reps"), "5");
  EXPECT_EQ(a.get_long("reps", 1), 5);
  ASSERT_EQ(a.positional().size(), 1u);
  EXPECT_EQ(a.positional()[0], "positional");
}

TEST(Args, DefaultsWhenAbsent) {
  const Args a = make({});
  EXPECT_EQ(a.get("scale", "small"), "small");
  EXPECT_EQ(a.get_long("reps", 3), 3);
  EXPECT_DOUBLE_EQ(a.get_double("factor", 1.5), 1.5);
}

TEST(Args, ParsesLists) {
  const Args a = make({"--cores=1,8,16,24,32", "--only=c-ray,md5"});
  const auto cores = a.get_sizes("cores");
  ASSERT_EQ(cores.size(), 5u);
  EXPECT_EQ(cores[0], 1u);
  EXPECT_EQ(cores[4], 32u);
  const auto only = a.get_list("only");
  ASSERT_EQ(only.size(), 2u);
  EXPECT_EQ(only[0], "c-ray");
  EXPECT_EQ(only[1], "md5");
}

TEST(Args, ListFallbacks) {
  const Args a = make({});
  const auto cores = a.get_sizes("cores", {1, 2});
  ASSERT_EQ(cores.size(), 2u);
  EXPECT_EQ(cores[1], 2u);
}

TEST(Args, MalformedNumbersThrow) {
  const Args a = make({"--reps=abc", "--cores=1,x"});
  EXPECT_THROW(a.get_long("reps", 1), std::invalid_argument);
  EXPECT_THROW(a.get_sizes("cores"), std::invalid_argument);
}

TEST(Args, DoubleParsing) {
  const Args a = make({"--factor=2.75"});
  EXPECT_DOUBLE_EQ(a.get_double("factor", 0.0), 2.75);
}

} // namespace
