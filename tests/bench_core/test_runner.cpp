#include "bench_core/runner.hpp"
#include "bench_core/workload.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace {

using namespace benchcore;

TEST(Runner, MeasureMedianReturnsPlausibleTime) {
  const double t = measure_median_seconds(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); }, 3);
  EXPECT_GE(t, 0.004);
  EXPECT_LT(t, 0.5);
}

TEST(Runner, ZeroRepsClampedToOne) {
  int calls = 0;
  measure_median_seconds([&] { calls++; }, 0);
  EXPECT_EQ(calls, 1);
}

TEST(Table1Harness, SpeedupShapeReflectsVariantCosts) {
  // Synthetic benchmark where the "Pthreads" variant takes ~2x the time of
  // the "OmpSs" variant: the speedup must come out well above 1.
  Table1Harness h({1, 2}, 3);
  VariantSet v;
  v.name = "synthetic";
  v.pthreads = [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  v.ompss = [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };
  const SpeedupRow row = h.measure(v);
  ASSERT_EQ(row.speedup.size(), 2u);
  for (double s : row.speedup) EXPECT_GT(s, 1.3);
  EXPECT_GT(row.mean, 1.3);
}

TEST(Table1Harness, RenderAllProducesPaperShapedTable) {
  Table1Harness h({1, 2}, 1);
  for (const char* name : {"alpha", "beta"}) {
    VariantSet v;
    v.name = name;
    v.pthreads = [](std::size_t) {};
    v.ompss = [](std::size_t) {};
    h.add(std::move(v));
  }
  std::vector<SpeedupRow> rows;
  const std::string table = h.render_all({}, &rows);
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_NE(table.find("Benchmark"), std::string::npos);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("Mean"), std::string::npos);
}

TEST(Table1Harness, OnlyFilterSelectsSubset) {
  Table1Harness h({1}, 1);
  for (const char* name : {"alpha", "beta", "gamma"}) {
    VariantSet v;
    v.name = name;
    v.pthreads = [](std::size_t) {};
    v.ompss = [](std::size_t) {};
    h.add(std::move(v));
  }
  std::vector<SpeedupRow> rows;
  h.render_all({"beta"}, &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "beta");
}

TEST(Table1Harness, RequiresCoreCounts) {
  EXPECT_THROW(Table1Harness({}, 1), std::invalid_argument);
}

TEST(Workload, ScaleParsingRoundTrips) {
  EXPECT_EQ(parse_scale("tiny"), Scale::Tiny);
  EXPECT_EQ(parse_scale("small"), Scale::Small);
  EXPECT_EQ(parse_scale("medium"), Scale::Medium);
  EXPECT_EQ(parse_scale("large"), Scale::Large);
  EXPECT_THROW(parse_scale("huge"), std::invalid_argument);
  EXPECT_STREQ(to_string(Scale::Medium), "medium");
}

TEST(Workload, ByScaleSelects) {
  EXPECT_EQ(by_scale(Scale::Tiny, 1, 2, 3, 4), 1);
  EXPECT_EQ(by_scale(Scale::Small, 1, 2, 3, 4), 2);
  EXPECT_EQ(by_scale(Scale::Medium, 1, 2, 3, 4), 3);
  EXPECT_EQ(by_scale(Scale::Large, 1, 2, 3, 4), 4);
}

} // namespace
