#include "bench_core/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using benchcore::TextTable;

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t;
  t.set_header({"Benchmark", "1", "8", "Mean"});
  t.add_row("c-ray", {1.03, 1.11, 1.10});
  t.add_row("md5", {1.00, 1.02, 1.06});
  const std::string out = t.render();
  EXPECT_NE(out.find("Benchmark"), std::string::npos);
  EXPECT_NE(out.find("c-ray"), std::string::npos);
  EXPECT_NE(out.find("1.03"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumbersUseFixedPrecision) {
  EXPECT_EQ(TextTable::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(2.0, 2), "2.00");
  EXPECT_EQ(TextTable::fmt(0.5, 3), "0.500");
}

TEST(TextTable, ColumnsAlign) {
  TextTable t;
  t.set_header({"Name", "X"});
  t.add_row("short", {1.0});
  t.add_row("a-much-longer-name", {2.0});
  const std::string out = t.render();
  // Both data lines must have equal length (alignment check).
  std::vector<std::string> lines;
  std::string cur;
  for (char c : out) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].size(), lines[3].size());
}

TEST(TextTable, IndentPrefixesEveryLine) {
  TextTable t;
  t.set_header({"H"});
  t.add_row({"v"});
  const std::string out = t.render(4);
  EXPECT_EQ(out.rfind("    H", 0), 0u);
}

} // namespace
