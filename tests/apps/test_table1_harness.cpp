// End-to-end integration of the Table 1 harness over real benchmarks:
// wires actual VariantSets (as bench/table1.cpp does) and checks the
// measured rows are structurally sound.
#include "apps/apps.hpp"
#include "bench_core/bench_core.hpp"

#include <gtest/gtest.h>

namespace {

using benchcore::Scale;
using benchcore::SpeedupRow;
using benchcore::Table1Harness;
using benchcore::VariantSet;

TEST(Table1Integration, MeasuresRealBenchmarksEndToEnd) {
  const auto rot = apps::RotateWorkload::make(Scale::Tiny);
  const auto md5w = apps::Md5Workload::make(Scale::Tiny);

  Table1Harness h({1, 2}, 1);
  h.add({"rotate", [&] { apps::rotate_seq(rot); },
         [&](std::size_t n) { apps::rotate_pthreads(rot, n); },
         [&](std::size_t n) { apps::rotate_ompss(rot, n); }});
  h.add({"md5", [&] { apps::md5_seq(md5w); },
         [&](std::size_t n) { apps::md5_pthreads(md5w, n); },
         [&](std::size_t n) { apps::md5_ompss(md5w, n); }});

  ASSERT_EQ(h.names().size(), 2u);
  EXPECT_EQ(h.names()[0], "rotate");

  std::vector<SpeedupRow> rows;
  const std::string table = h.render_all({}, &rows);

  ASSERT_EQ(rows.size(), 2u);
  for (const auto& r : rows) {
    ASSERT_EQ(r.speedup.size(), 2u) << r.name;
    for (std::size_t i = 0; i < r.speedup.size(); ++i) {
      EXPECT_GT(r.pthreads_seconds[i], 0.0) << r.name;
      EXPECT_GT(r.ompss_seconds[i], 0.0) << r.name;
      EXPECT_GT(r.speedup[i], 0.05) << r.name << " col " << i;
      EXPECT_LT(r.speedup[i], 20.0) << r.name << " col " << i;
      EXPECT_NEAR(r.speedup[i], r.pthreads_seconds[i] / r.ompss_seconds[i],
                  1e-12);
    }
    EXPECT_GT(r.mean, 0.0);
  }

  // The rendered table contains the benchmark rows and the Mean row.
  EXPECT_NE(table.find("rotate"), std::string::npos);
  EXPECT_NE(table.find("md5"), std::string::npos);
  EXPECT_NE(table.find("Mean"), std::string::npos);
}

TEST(Table1Integration, AllTenWorkloadFactoriesConstructAtTinyScale) {
  // Every benchmark's workload factory must produce a valid input set —
  // the precondition for bench/table1 registering all 10 rows.
  EXPECT_GT(apps::CRayWorkload::make(Scale::Tiny).height, 0);
  EXPECT_GT(apps::RotateWorkload::make(Scale::Tiny).src.height(), 0);
  EXPECT_GT(apps::RgbcmyWorkload::make(Scale::Tiny).iters, 0);
  EXPECT_FALSE(apps::Md5Workload::make(Scale::Tiny).buffers.empty());
  EXPECT_GT(apps::KmeansWorkload::make(Scale::Tiny).points.count, 0u);
  EXPECT_GT(apps::RayRotWorkload::make(Scale::Tiny).height, 0);
  EXPECT_GT(apps::RotCcWorkload::make(Scale::Tiny).src.height(), 0);
  EXPECT_GT(apps::StreamclusterWorkload::make(Scale::Tiny).points.count, 0u);
  EXPECT_GT(apps::BodytrackWorkload::make(Scale::Tiny).frames, 0);
  EXPECT_FALSE(apps::H264Workload::make(Scale::Tiny).video.frames.empty());
}

} // namespace
