// Variant-equivalence tests for kmeans, streamcluster, and bodytrack.
// All three are designed deterministic (counter-based RNG, fixed reduction
// order), so exact equality across variants and thread counts is required.
#include "apps/apps.hpp"

#include <gtest/gtest.h>

namespace {

using benchcore::Scale;

class ComplexThreadTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ComplexThreadTest, KmeansVariantsAgree) {
  const auto w = apps::KmeansWorkload::make(Scale::Tiny);
  const auto ref = apps::kmeans_app_seq(w);
  const auto pth = apps::kmeans_app_pthreads(w, GetParam());
  const auto oss_res = apps::kmeans_app_ompss(w, GetParam());

  EXPECT_EQ(ref.assignment, pth.assignment);
  EXPECT_EQ(ref.assignment, oss_res.assignment);
  ASSERT_EQ(ref.centroids.size(), pth.centroids.size());
  for (std::size_t i = 0; i < ref.centroids.size(); ++i) {
    // Partial sums are doubles merged in block order; tiny float noise only.
    EXPECT_NEAR(ref.centroids[i], pth.centroids[i], 1e-4f) << i;
    EXPECT_NEAR(ref.centroids[i], oss_res.centroids[i], 1e-4f) << i;
  }
  EXPECT_NEAR(ref.inertia, pth.inertia, 1e-6 * (1.0 + ref.inertia));
  EXPECT_NEAR(ref.inertia, oss_res.inertia, 1e-6 * (1.0 + ref.inertia));
  EXPECT_EQ(ref.iterations, oss_res.iterations);
}

TEST_P(ComplexThreadTest, StreamclusterVariantsAgree) {
  const auto w = apps::StreamclusterWorkload::make(Scale::Tiny);
  const auto ref = apps::streamcluster_app_seq(w);
  const auto pth = apps::streamcluster_app_pthreads(w, GetParam());
  const auto oss_res = apps::streamcluster_app_ompss(w, GetParam());

  EXPECT_EQ(ref.centers, pth.centers);
  EXPECT_EQ(ref.centers, oss_res.centers);
  EXPECT_EQ(ref.assignment, pth.assignment);
  EXPECT_EQ(ref.assignment, oss_res.assignment);
  EXPECT_NEAR(ref.total_cost(), pth.total_cost(), 1e-6 * (1.0 + ref.total_cost()));
  EXPECT_NEAR(ref.total_cost(), oss_res.total_cost(),
              1e-6 * (1.0 + ref.total_cost()));
}

TEST_P(ComplexThreadTest, BodytrackVariantsAgreeExactly) {
  const auto w = apps::BodytrackWorkload::make(Scale::Tiny);
  const auto ref = apps::bodytrack_seq(w);
  const auto pth = apps::bodytrack_pthreads(w, GetParam());
  const auto oss_res = apps::bodytrack_ompss(w, GetParam());
  ASSERT_EQ(ref.size(), pth.size());
  ASSERT_EQ(ref.size(), oss_res.size());
  for (std::size_t f = 0; f < ref.size(); ++f) {
    EXPECT_FLOAT_EQ(ref[f].distance(pth[f]), 0.f) << "frame " << f;
    EXPECT_FLOAT_EQ(ref[f].distance(oss_res[f]), 0.f) << "frame " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ComplexThreadTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(ComplexApps, BodytrackEstimatesTrackTruth) {
  const auto w = apps::BodytrackWorkload::make(Scale::Tiny);
  const auto estimates = apps::bodytrack_seq(w);
  const auto truth =
      tracking::ground_truth_pose(w.frames - 1, w.width, w.height);
  EXPECT_NEAR(estimates.back().q[0], truth.q[0], 15.0);
}

TEST(ComplexApps, StreamclusterFindsPlausibleCenterCount) {
  const auto w = apps::StreamclusterWorkload::make(Scale::Tiny);
  const auto sol = apps::streamcluster_app_seq(w);
  EXPECT_GE(sol.centers.size(), 2u);
  EXPECT_LT(sol.centers.size(), w.points.count / 4);
}

} // namespace
