// Variant-equivalence tests for the chained workloads (ray-rot, rot-cc),
// including the source-band dependency math that ray-rot's OmpSs variant
// relies on.
#include "apps/apps.hpp"

#include <gtest/gtest.h>

namespace {

using benchcore::Scale;

class ChainedThreadTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChainedThreadTest, RayRotVariantsAgreeExactly) {
  const auto w = apps::RayRotWorkload::make(Scale::Tiny);
  const img::Image ref = apps::ray_rot_seq(w);
  EXPECT_TRUE(ref == apps::ray_rot_pthreads(w, GetParam()));
  EXPECT_TRUE(ref == apps::ray_rot_ompss(w, GetParam()));
}

TEST_P(ChainedThreadTest, RayRotAgreesUnderEveryScheduler) {
  const auto w = apps::RayRotWorkload::make(Scale::Tiny);
  const img::Image ref = apps::ray_rot_seq(w);
  for (auto policy :
       {oss::SchedulerPolicy::Fifo, oss::SchedulerPolicy::Locality,
        oss::SchedulerPolicy::WorkStealing}) {
    EXPECT_TRUE(ref == apps::ray_rot_ompss_with_policy(w, GetParam(), policy))
        << oss::to_string(policy);
  }
}

TEST_P(ChainedThreadTest, RotCcVariantsAgreeExactly) {
  const auto w = apps::RotCcWorkload::make(Scale::Tiny);
  const img::Image ref = apps::rot_cc_seq(w);
  EXPECT_TRUE(ref == apps::rot_cc_pthreads(w, GetParam()));
  EXPECT_TRUE(ref == apps::rot_cc_ompss(w, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Threads, ChainedThreadTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(RotateSourceBand, CoversEveryPixelTheKernelSamples) {
  // Property check of the dependency math: for each destination block, the
  // declared band must contain every source row the inverse mapping visits.
  const int w = 64, h = 48;
  for (double deg : {0.0, 5.0, 8.0, -12.0, 30.0}) {
    const auto spec = img::RotateSpec::degrees(deg);
    const double c = std::cos(spec.angle_rad);
    const double s = std::sin(spec.angle_rad);
    const double cx = 0.5 * (w - 1);
    const double cy = 0.5 * (h - 1);
    for (int lo = 0; lo < h; lo += 8) {
      const int hi = std::min(h, lo + 8);
      const auto [band_lo, band_hi] = apps::rotate_source_band(spec, w, h, lo, hi);
      for (int y = lo; y < hi; ++y) {
        for (int x = 0; x < w; ++x) {
          const double sy = -s * (x - cx) + c * (y - cy) + cy;
          const int y0 = static_cast<int>(std::floor(sy));
          // Bilinear touches y0 and y0+1; only in-frame rows matter.
          for (int yy : {y0, y0 + 1}) {
            if (yy < 0 || yy >= h) continue;
            ASSERT_GE(yy, band_lo) << "deg=" << deg << " block=" << lo;
            ASSERT_LT(yy, band_hi) << "deg=" << deg << " block=" << lo;
          }
        }
      }
    }
  }
}

TEST(RotateSourceBand, SmallAngleBandsAreNarrow) {
  const auto spec = img::RotateSpec::degrees(2.0);
  const auto [lo, hi] = apps::rotate_source_band(spec, 64, 512, 256, 264);
  // A 2° rotation of an 8-row block must not need the whole image.
  EXPECT_GT(hi - lo, 7);
  EXPECT_LT(hi - lo, 40);
}

} // namespace
