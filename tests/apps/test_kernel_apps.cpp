// Variant-equivalence tests for the kernel benchmarks (c-ray, rotate,
// rgbcmy, md5): Pthreads and OmpSs variants must produce results identical
// to the sequential reference at every thread count — the comparability
// requirement of the paper's methodology.
#include "apps/apps.hpp"

#include <gtest/gtest.h>

namespace {

using benchcore::Scale;

class ThreadCountTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadCountTest, CRayVariantsAgreeExactly) {
  const auto w = apps::CRayWorkload::make(Scale::Tiny);
  const img::Image ref = apps::c_ray_seq(w);
  EXPECT_TRUE(ref == apps::c_ray_pthreads(w, GetParam()));
  EXPECT_TRUE(ref == apps::c_ray_ompss(w, GetParam()));
}

TEST_P(ThreadCountTest, RotateVariantsAgreeExactly) {
  const auto w = apps::RotateWorkload::make(Scale::Tiny);
  const img::Image ref = apps::rotate_seq(w);
  EXPECT_TRUE(ref == apps::rotate_pthreads(w, GetParam()));
  EXPECT_TRUE(ref == apps::rotate_ompss(w, GetParam()));
}

TEST_P(ThreadCountTest, RgbcmyVariantsAgreeExactly) {
  const auto w = apps::RgbcmyWorkload::make(Scale::Tiny);
  const img::Image ref = apps::rgbcmy_seq(w);
  EXPECT_TRUE(ref == apps::rgbcmy_pthreads(w, GetParam()));
  EXPECT_TRUE(ref == apps::rgbcmy_ompss(w, GetParam()));
}

TEST_P(ThreadCountTest, RgbcmyBlockingBarrierVariantAgrees) {
  const auto w = apps::RgbcmyWorkload::make(Scale::Tiny);
  const img::Image ref = apps::rgbcmy_seq(w);
  EXPECT_TRUE(ref == apps::rgbcmy_ompss_with_policy(w, GetParam(), false));
}

TEST_P(ThreadCountTest, Md5VariantsAgreeExactly) {
  const auto w = apps::Md5Workload::make(Scale::Tiny);
  const auto ref = apps::md5_seq(w);
  EXPECT_EQ(ref, apps::md5_pthreads(w, GetParam()));
  EXPECT_EQ(ref, apps::md5_ompss(w, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(KernelWorkloads, ScalesGrowMonotonically) {
  const auto tiny = apps::CRayWorkload::make(Scale::Tiny);
  const auto small = apps::CRayWorkload::make(Scale::Small);
  EXPECT_LT(tiny.width * tiny.height, small.width * small.height);

  const auto mt = apps::Md5Workload::make(Scale::Tiny);
  const auto ms = apps::Md5Workload::make(Scale::Small);
  EXPECT_LT(mt.buffers.size(), ms.buffers.size());
}

TEST(KernelWorkloads, Md5DigestsAreDistinctAcrossBuffers) {
  const auto w = apps::Md5Workload::make(Scale::Tiny);
  const auto digests = apps::md5_seq(w);
  for (std::size_t i = 1; i < digests.size(); ++i) {
    EXPECT_FALSE(digests[i] == digests[0]);
  }
}

} // namespace
