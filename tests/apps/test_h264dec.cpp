// h264dec variant equivalence: all three decoders must reproduce the
// encoder's reconstruction checksums exactly, across thread counts, pipeline
// depths, and task-grouping factors (the Listing 1 semantics).
#include "apps/apps.hpp"

#include <gtest/gtest.h>

namespace {

using benchcore::Scale;

class H264ThreadTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(H264ThreadTest, AllVariantsMatchEncoderReconstruction) {
  const auto w = apps::H264Workload::make(Scale::Tiny);
  ASSERT_FALSE(w.expected_checksums.empty());

  EXPECT_EQ(apps::h264dec_seq(w), w.expected_checksums);
  EXPECT_EQ(apps::h264dec_pthreads(w, GetParam()), w.expected_checksums);
  EXPECT_EQ(apps::h264dec_pthreads_pipeline(w, GetParam()), w.expected_checksums);
  EXPECT_EQ(apps::h264dec_ompss(w, GetParam()), w.expected_checksums);
}

TEST_P(H264ThreadTest, GroupingFactorsPreserveCorrectness) {
  const auto w = apps::H264Workload::make(Scale::Tiny);
  for (int group : {1, 2, 3, 8}) {
    EXPECT_EQ(apps::h264dec_ompss_grouped(w, GetParam(), group),
              w.expected_checksums)
        << "group=" << group;
  }
}

TEST_P(H264ThreadTest, PipelineDepthsPreserveCorrectness) {
  // Parity across the depth sweep for BOTH pipelined decoders: the pthreads
  // pipeline sizes its bounded queue from pipeline_depth too (it used to
  // hardcode 3, so this sweep only ever varied the OmpSs side).
  auto w = apps::H264Workload::make(Scale::Tiny);
  for (int depth : {1, 2, 3, 6}) {
    w.pipeline_depth = depth;
    EXPECT_EQ(apps::h264dec_ompss(w, GetParam()), w.expected_checksums)
        << "depth=" << depth;
    EXPECT_EQ(apps::h264dec_pthreads_pipeline(w, GetParam()),
              w.expected_checksums)
        << "depth=" << depth;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, H264ThreadTest,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{4}),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(H264Workload, StreamShapeIsSane) {
  const auto w = apps::H264Workload::make(Scale::Tiny);
  EXPECT_EQ(w.video.frames.size(), w.expected_checksums.size());
  EXPECT_GT(w.video.total_bytes(), 100u);
  EXPECT_EQ(w.video.width % 16, 0);
  EXPECT_EQ(w.video.height % 16, 0);
}

TEST(H264Workload, RepeatedDecodesAreIdempotent) {
  const auto w = apps::H264Workload::make(Scale::Tiny);
  const auto first = apps::h264dec_ompss(w, 2);
  const auto second = apps::h264dec_ompss(w, 2);
  EXPECT_EQ(first, second);
}

} // namespace
