#include "cluster/streamcluster.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace cluster;

TEST(Streamcluster, InitialSolutionInvariants) {
  const PointSet ps = make_blobs(300, 4, 6, 21);
  const FacilitySolution sol = initial_solution(ps, ps.count, 0.5);
  ASSERT_GE(sol.centers.size(), 1u);
  EXPECT_EQ(sol.assignment.size(), ps.count);
  EXPECT_EQ(sol.dist.size(), ps.count);
  // Every assignment index is a valid center; every center point has
  // distance zero to itself.
  for (std::size_t i = 0; i < ps.count; ++i) {
    ASSERT_LT(sol.assignment[i], sol.centers.size());
    EXPECT_LE(sol.dist[i], 0.5f + 1e-6f) << "open rule violated at " << i;
  }
  for (std::size_t c = 0; c < sol.centers.size(); ++c) {
    EXPECT_EQ(sol.assignment[sol.centers[c]], c);
    EXPECT_FLOAT_EQ(sol.dist[sol.centers[c]], 0.f);
  }
}

TEST(Streamcluster, PGainPartialsCompose) {
  const PointSet ps = make_blobs(200, 3, 4, 31);
  const FacilitySolution sol = initial_solution(ps, ps.count, 0.4);
  const std::size_t x = 17;

  PGainPartial whole;
  whole.init(sol.centers.size());
  pgain_range(ps, sol, x, 0, ps.count, whole);

  PGainPartial a, b;
  a.init(sol.centers.size());
  b.init(sol.centers.size());
  pgain_range(ps, sol, x, 0, 100, a);
  pgain_range(ps, sol, x, 100, ps.count, b);
  a.merge(b);

  EXPECT_NEAR(whole.switch_gain, a.switch_gain, 1e-9);
  for (std::size_t c = 0; c < whole.center_extra.size(); ++c) {
    EXPECT_NEAR(whole.center_extra[c], a.center_extra[c], 1e-9);
  }
}

TEST(Streamcluster, ApplyingPositiveGainReducesTotalCost) {
  const PointSet ps = make_blobs(400, 4, 5, 51, 0.15f);
  FacilitySolution sol = initial_solution(ps, ps.count, 1.0);
  for (std::size_t x : candidate_sequence(ps.count, 40, 7)) {
    const double before = sol.total_cost();
    PGainPartial p;
    p.init(sol.centers.size());
    pgain_range(ps, sol, x, 0, ps.count, p);
    const double gain = pgain_apply(ps, sol, x, ps.count, p);
    const double after = sol.total_cost();
    if (gain > 0) {
      EXPECT_LT(after, before + 1e-6)
          << "positive gain must reduce cost (x=" << x << ")";
      EXPECT_NEAR(before - after, gain, 1e-3 + 1e-6 * before);
    } else {
      EXPECT_NEAR(after, before, 1e-9);
    }
  }
}

TEST(Streamcluster, SolutionInvariantsHoldAfterLocalSearch) {
  const PointSet ps = make_blobs(500, 3, 6, 61);
  const FacilitySolution sol = streamcluster_seq(ps, 200, 0.3, 30, 5);
  ASSERT_GE(sol.centers.size(), 1u);
  for (std::size_t i = 0; i < ps.count; ++i) {
    ASSERT_LT(sol.assignment[i], sol.centers.size());
    // dist must equal the actual distance to the assigned center.
    const float d = dist2(ps.point(i), ps.point(sol.centers[sol.assignment[i]]),
                          ps.dim);
    EXPECT_NEAR(sol.dist[i], d, 1e-4f) << "point " << i;
  }
}

TEST(Streamcluster, ReopeningExistingCenterIsNoop) {
  const PointSet ps = make_blobs(100, 2, 2, 71);
  FacilitySolution sol = initial_solution(ps, ps.count, 0.5);
  const std::size_t existing = sol.centers[0];
  PGainPartial p;
  p.init(sol.centers.size());
  pgain_range(ps, sol, existing, 0, ps.count, p);
  const double before = sol.total_cost();
  EXPECT_DOUBLE_EQ(pgain_apply(ps, sol, existing, ps.count, p), 0.0);
  EXPECT_DOUBLE_EQ(sol.total_cost(), before);
}

TEST(Streamcluster, CandidateSequenceDeterministicAndInRange) {
  const auto a = candidate_sequence(50, 20, 3);
  const auto b = candidate_sequence(50, 20, 3);
  EXPECT_EQ(a, b);
  for (std::size_t x : a) EXPECT_LT(x, 50u);
}

TEST(Streamcluster, RejectsZeroChunk) {
  const PointSet ps = make_blobs(10, 2, 2, 1);
  EXPECT_THROW(streamcluster_seq(ps, 0, 0.5, 5, 1), std::invalid_argument);
}

} // namespace
