#include "cluster/kmeans.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace cluster;

TEST(Kmeans, RecoversWellSeparatedBlobs) {
  const PointSet ps = make_blobs(600, 2, 3, 11, 0.01f);
  const KmeansResult res = kmeans_seq(ps, 3, 10);
  // Every point must be close to its assigned centroid.
  double worst = 0;
  for (std::size_t i = 0; i < ps.count; ++i) {
    const float d = dist2(ps.point(i), res.centroids.data() +
                                           res.assignment[i] * ps.dim,
                          ps.dim);
    worst = std::max(worst, static_cast<double>(d));
  }
  EXPECT_LT(worst, 0.05);
  EXPECT_EQ(res.iterations, 10);
}

TEST(Kmeans, InertiaDecreasesMonotonically) {
  const PointSet ps = make_blobs(500, 4, 4, 3, 0.1f);
  double prev = 1e300;
  for (int iters = 1; iters <= 5; ++iters) {
    const KmeansResult res = kmeans_seq(ps, 4, iters);
    EXPECT_LE(res.inertia, prev + 1e-9) << "iters=" << iters;
    prev = res.inertia;
  }
}

TEST(Kmeans, AssignRangePartialsComposeToFullAssignment) {
  const PointSet ps = make_blobs(200, 3, 4, 5);
  const auto centroids = kmeans_init_centroids(ps, 4);

  // Full pass.
  std::vector<std::uint32_t> full(ps.count);
  KmeansPartial pf;
  pf.init(4, ps.dim);
  const double inertia_full =
      kmeans_assign_range(ps, centroids, 4, 0, ps.count, full.data(), pf);

  // Split pass.
  std::vector<std::uint32_t> split(ps.count);
  KmeansPartial p1, p2;
  p1.init(4, ps.dim);
  p2.init(4, ps.dim);
  const double i1 = kmeans_assign_range(ps, centroids, 4, 0, 120, split.data(), p1);
  const double i2 =
      kmeans_assign_range(ps, centroids, 4, 120, ps.count, split.data(), p2);
  p1.merge(p2);

  EXPECT_EQ(full, split);
  EXPECT_NEAR(inertia_full, i1 + i2, 1e-9);
  EXPECT_EQ(pf.counts, p1.counts);
  for (std::size_t i = 0; i < pf.sums.size(); ++i) {
    EXPECT_NEAR(pf.sums[i], p1.sums[i], 1e-9);
  }
}

TEST(Kmeans, EmptyClusterKeepsPreviousCentroid) {
  KmeansPartial merged;
  merged.init(2, 2);
  merged.counts[0] = 2;
  merged.sums[0] = 4.0; // centroid 0 -> (2, 3)
  merged.sums[1] = 6.0;
  std::vector<float> centroids{9.f, 9.f, 5.f, 5.f};
  kmeans_recompute(merged, 2, 2, centroids);
  EXPECT_FLOAT_EQ(centroids[0], 2.f);
  EXPECT_FLOAT_EQ(centroids[1], 3.f);
  EXPECT_FLOAT_EQ(centroids[2], 5.f); // untouched: empty cluster
  EXPECT_FLOAT_EQ(centroids[3], 5.f);
}

TEST(Kmeans, RejectsDegenerateInputs) {
  PointSet empty;
  EXPECT_THROW(kmeans_init_centroids(empty, 2), std::invalid_argument);
  const PointSet ps = make_blobs(10, 2, 2, 1);
  EXPECT_THROW(kmeans_init_centroids(ps, 0), std::invalid_argument);
}

} // namespace
