#include "cluster/points.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Points, Dist2KnownValues) {
  const float a[3] = {0, 0, 0};
  const float b[3] = {1, 2, 2};
  EXPECT_FLOAT_EQ(cluster::dist2(a, b, 3), 9.f);
  EXPECT_FLOAT_EQ(cluster::dist2(a, a, 3), 0.f);
}

TEST(Points, BlobsDeterministicAndShaped) {
  const auto a = cluster::make_blobs(100, 4, 5, 42);
  const auto b = cluster::make_blobs(100, 4, 5, 42);
  EXPECT_EQ(a.coords, b.coords);
  EXPECT_EQ(a.count, 100u);
  EXPECT_EQ(a.dim, 4u);
  EXPECT_EQ(a.coords.size(), 400u);
}

TEST(Points, BlobsClusterStructureIsTight) {
  // Points i and i+5 share a blob (round-robin assignment with 5 clusters);
  // their distance should usually be far smaller than across blobs.
  const auto ps = cluster::make_blobs(1000, 8, 5, 7, 0.02f);
  double same = 0, cross = 0;
  int n = 0;
  for (std::size_t i = 0; i + 6 < ps.count; i += 10, ++n) {
    same += cluster::dist2(ps.point(i), ps.point(i + 5), ps.dim);
    cross += cluster::dist2(ps.point(i), ps.point(i + 1), ps.dim);
  }
  EXPECT_LT(same / n, cross / n);
}

TEST(Points, UniformCoversUnitCube) {
  const auto ps = cluster::make_uniform(2000, 3, 9);
  float mn = 1e9f, mx = -1e9f;
  for (float c : ps.coords) {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  EXPECT_GE(mn, 0.f);
  EXPECT_LT(mx, 1.f);
  EXPECT_LT(mn, 0.05f); // actually spans the cube
  EXPECT_GT(mx, 0.95f);
}

} // namespace
