#include "tracking/particle_filter.hpp"

#include <gtest/gtest.h>

namespace {

using namespace tracking;

TEST(ParticleFilter, PerturbIsDeterministicPerKey) {
  TrackerConfig cfg;
  BodyPose a = ground_truth_pose(0, 160, 120);
  BodyPose b = a;
  perturb_pose(a, cfg, 3, 1, 17);
  perturb_pose(b, cfg, 3, 1, 17);
  EXPECT_FLOAT_EQ(a.distance(b), 0.f);
  BodyPose c = ground_truth_pose(0, 160, 120);
  perturb_pose(c, cfg, 3, 1, 18); // different particle index
  EXPECT_GT(a.distance(c), 0.f);
}

TEST(ParticleFilter, StepRangeComposes) {
  TrackerConfig cfg;
  cfg.num_particles = 32;
  const BinaryMap obs = make_observation(1, 160, 120);

  std::vector<BodyPose> whole(32, ground_truth_pose(0, 160, 120));
  std::vector<double> w_whole(32, 0.0);
  particles_step_range(whole, w_whole, obs, cfg, 1, 0, 0, 32);

  std::vector<BodyPose> split(32, ground_truth_pose(0, 160, 120));
  std::vector<double> w_split(32, 0.0);
  particles_step_range(split, w_split, obs, cfg, 1, 0, 0, 10);
  particles_step_range(split, w_split, obs, cfg, 1, 0, 10, 32);

  EXPECT_EQ(w_whole, w_split);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_FLOAT_EQ(whole[i].distance(split[i]), 0.f);
  }
}

TEST(ParticleFilter, WeightsFavorPosesNearTruth) {
  TrackerConfig cfg;
  const BinaryMap obs = make_observation(2, 160, 120);
  const BodyPose truth = ground_truth_pose(2, 160, 120);
  BodyPose off = truth;
  off.q[0] += 40.f;

  std::vector<BodyPose> particles{truth, off};
  std::vector<double> weights(2, 0.0);
  // Use layer high enough that perturbation noise is small.
  TrackerConfig tight = cfg;
  tight.base_sigma_pos = 0.f;
  tight.base_sigma_ang = 0.f;
  particles_step_range(particles, weights, obs, tight, 2, 0, 0, 2);
  EXPECT_GT(weights[0], weights[1] * 5);
}

TEST(ParticleFilter, ResampleConcentratesOnHeavyParticle) {
  std::vector<BodyPose> particles(8);
  for (std::size_t i = 0; i < 8; ++i) particles[i].q[0] = static_cast<float>(i);
  std::vector<double> weights(8, 1e-12);
  weights[5] = 1.0;
  resample(particles, weights, 42);
  int fives = 0;
  for (const auto& p : particles) {
    if (p.q[0] == 5.f) fives++;
  }
  EXPECT_GE(fives, 7); // nearly all copies of the heavy particle
  for (double w : weights) EXPECT_EQ(w, 1.0);
}

TEST(ParticleFilter, ResampleHandlesDegenerateWeights) {
  std::vector<BodyPose> particles(4);
  std::vector<double> weights(4, 0.0);
  resample(particles, weights, 1);
  for (double w : weights) EXPECT_EQ(w, 1.0); // reset, no crash
}

TEST(ParticleFilter, WeightedMeanMatchesHandComputation) {
  std::vector<BodyPose> particles(2);
  particles[0].q[0] = 10.f;
  particles[1].q[0] = 20.f;
  std::vector<double> weights{3.0, 1.0};
  const BodyPose mean = weighted_mean(particles, weights);
  EXPECT_FLOAT_EQ(mean.q[0], 12.5f);
}

TEST(ParticleFilter, TrackerFollowsSyntheticMotion) {
  TrackerConfig cfg;
  cfg.num_particles = 96;
  cfg.annealing_layers = 3;
  const int frames = 6;
  const auto estimates = track_seq(cfg, frames, 160, 120);
  ASSERT_EQ(estimates.size(), static_cast<std::size_t>(frames));
  // The tracked x position must follow the ground truth within a loose
  // tolerance by the last frame.
  const BodyPose truth = ground_truth_pose(frames - 1, 160, 120);
  EXPECT_NEAR(estimates.back().q[0], truth.q[0], 12.0);
  EXPECT_NEAR(estimates.back().q[1], truth.q[1], 12.0);
}

TEST(ParticleFilter, TrackerIsDeterministic) {
  TrackerConfig cfg;
  cfg.num_particles = 32;
  const auto a = track_seq(cfg, 3, 160, 120);
  const auto b = track_seq(cfg, 3, 160, 120);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i].distance(b[i]), 0.f);
  }
}

} // namespace
