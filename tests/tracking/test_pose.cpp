#include "tracking/pose.hpp"

#include <gtest/gtest.h>

namespace {

using namespace tracking;

BodyPose centered_pose(int w, int h) {
  BodyPose p;
  p.q[0] = w / 2.f;
  p.q[1] = h / 2.f;
  p.q[7] = 1.f;
  return p;
}

TEST(Pose, DistanceIsL1OverParameters) {
  BodyPose a = centered_pose(100, 100);
  BodyPose b = a;
  EXPECT_FLOAT_EQ(a.distance(b), 0.f);
  b.q[0] += 3.f;
  b.q[3] -= 0.5f;
  EXPECT_FLOAT_EQ(a.distance(b), 3.5f);
}

TEST(Pose, SamplePointsCoverSixSegments) {
  std::vector<Pt> pts;
  pose_sample_points(centered_pose(100, 100), 10, pts);
  EXPECT_EQ(pts.size(), 60u);
  pose_sample_points(centered_pose(100, 100), 1, pts); // clamped to 2
  EXPECT_EQ(pts.size(), 12u);
}

TEST(Pose, RenderMarksPixels) {
  const BinaryMap map = render_pose(centered_pose(120, 120), 120, 120);
  std::size_t set = 0;
  for (auto p : map.pixels) set += p;
  EXPECT_GT(set, 50u);
  EXPECT_LT(set, map.pixels.size() / 4);
}

TEST(Pose, DilationGrowsSetArea) {
  const BinaryMap thin = render_pose(centered_pose(100, 100), 100, 100);
  const BinaryMap thick = dilate(thin, 2);
  std::size_t n_thin = 0, n_thick = 0;
  for (auto p : thin.pixels) n_thin += p;
  for (auto p : thick.pixels) n_thick += p;
  EXPECT_GT(n_thick, n_thin * 2);
  // Dilation is a superset.
  for (int y = 0; y < 100; ++y) {
    for (int x = 0; x < 100; ++x) {
      if (thin.at(x, y)) ASSERT_TRUE(thick.at(x, y));
    }
  }
}

TEST(Pose, OverlapPerfectOnOwnDilatedRendering) {
  const BodyPose pose = centered_pose(120, 120);
  const BinaryMap obs = dilate(render_pose(pose, 120, 120), 2);
  EXPECT_GT(pose_overlap(pose, obs, 24), 0.99);
}

TEST(Pose, OverlapDropsWhenPoseShifts) {
  const BodyPose pose = centered_pose(120, 120);
  const BinaryMap obs = dilate(render_pose(pose, 120, 120), 1);
  BodyPose shifted = pose;
  shifted.q[0] += 30.f;
  EXPECT_LT(pose_overlap(shifted, obs, 24), pose_overlap(pose, obs, 24) - 0.3);
}

TEST(Pose, OutOfFramePoseHasLowOverlap) {
  const BodyPose pose = centered_pose(100, 100);
  const BinaryMap obs = dilate(render_pose(pose, 100, 100), 1);
  BodyPose far = pose;
  far.q[0] = -500.f;
  EXPECT_LT(pose_overlap(far, obs, 16), 0.01);
}

} // namespace
