// ThreadPool fork-join semantics.
#include "threading/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

namespace {

TEST(ThreadPool, RunsEveryTidExactlyOnce) {
  pt::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](std::size_t tid) { hits[tid]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SizeReportsThreadCount) {
  pt::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroThreadsRejected) {
  EXPECT_THROW(pt::ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, ReusableAcrossManyEpochs) {
  pt::ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int epoch = 0; epoch < 50; ++epoch) {
    pool.run([&](std::size_t) { total++; });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(ThreadPool, DistinctTidsWithinEpoch) {
  pt::ThreadPool pool(4);
  std::mutex mu;
  std::set<std::size_t> tids;
  pool.run([&](std::size_t tid) {
    std::lock_guard lock(mu);
    tids.insert(tid);
  });
  EXPECT_EQ(tids.size(), 4u);
  EXPECT_EQ(*tids.begin(), 0u);
  EXPECT_EQ(*tids.rbegin(), 3u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  pt::ThreadPool pool(2);
  EXPECT_THROW(
      pool.run([](std::size_t tid) {
        if (tid == 1) throw std::runtime_error("worker failed");
      }),
      std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> ok{0};
  pool.run([&](std::size_t) { ok++; });
  EXPECT_EQ(ok.load(), 2);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  pt::ThreadPool pool(1);
  int x = 0;
  pool.run([&](std::size_t tid) {
    EXPECT_EQ(tid, 0u);
    x = 7;
  });
  EXPECT_EQ(x, 7);
}

} // namespace
