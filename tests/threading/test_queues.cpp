// MpmcQueue, SpscRing, and Latch behaviour.
#include "threading/latch.hpp"
#include "threading/mpmc_queue.hpp"
#include "threading/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace {

TEST(MpmcQueue, FifoOrderSingleThread) {
  pt::MpmcQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueue, TryOpsRespectBounds) {
  pt::MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3)); // full
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_pop() == std::nullopt);
}

TEST(MpmcQueue, CloseDrainsThenSignalsEnd) {
  pt::MpmcQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3)); // rejected after close
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop(), std::nullopt); // drained + closed
  EXPECT_TRUE(q.closed());
}

TEST(MpmcQueue, CloseWakesBlockedConsumer) {
  pt::MpmcQueue<int> q;
  std::atomic<bool> got_nullopt{false};
  std::thread consumer([&] {
    auto v = q.pop(); // blocks until close
    got_nullopt = !v.has_value();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(got_nullopt.load());
}

TEST(MpmcQueue, ManyProducersManyConsumersConserveItems) {
  pt::MpmcQueue<int> q(64);
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 500;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> ts;
  for (int p = 0; p < kProducers; ++p) {
    ts.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    ts.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        popped++;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) ts[static_cast<std::size_t>(p)].join();
  q.close();
  for (int c = kProducers; c < kProducers + kConsumers; ++c)
    ts[static_cast<std::size_t>(c)].join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  pt::SpscRing<int> r(5);
  EXPECT_EQ(r.capacity(), 8u);
  pt::SpscRing<int> r2(16);
  EXPECT_EQ(r2.capacity(), 16u);
}

TEST(SpscRing, OrderAndFullEmpty) {
  pt::SpscRing<int> r(4);
  EXPECT_EQ(r.try_pop(), std::nullopt);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99)); // full
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.try_pop().value(), i);
  EXPECT_EQ(r.try_pop(), std::nullopt);
}

TEST(SpscRing, ThreadedTransferPreservesSequence) {
  pt::SpscRing<int> r(8);
  constexpr int kItems = 20000;
  std::atomic<bool> ok{true};
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!r.try_push(i)) std::this_thread::yield();
    }
  });
  std::thread consumer([&] {
    for (int i = 0; i < kItems; ++i) {
      std::optional<int> v;
      while (!(v = r.try_pop())) std::this_thread::yield();
      if (*v != i) ok = false;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(r.size(), 0u);
}

TEST(Latch, CountdownReleasesWaiter) {
  pt::Latch latch(3);
  EXPECT_FALSE(latch.ready());
  std::thread waiter([&] { latch.wait(); });
  latch.count_down();
  latch.count_down();
  EXPECT_FALSE(latch.ready());
  latch.count_down();
  waiter.join();
  EXPECT_TRUE(latch.ready());
}

TEST(Latch, ExtraCountDownsAreHarmless) {
  pt::Latch latch(1);
  latch.count_down();
  latch.count_down(); // already zero: no underflow
  EXPECT_TRUE(latch.ready());
  latch.wait(); // returns immediately
}

} // namespace
