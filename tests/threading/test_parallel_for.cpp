// parallel_for_static / parallel_for_dynamic coverage semantics.
#include "threading/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace {

TEST(ParallelForStatic, CoversRangeExactlyOnce) {
  pt::ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(100);
  pt::parallel_for_static(pool, 0, 100, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) touched[i]++;
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForStatic, HandlesRangeSmallerThanThreadCount) {
  pt::ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(3);
  pt::parallel_for_static(pool, 0, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) touched[i]++;
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForStatic, EmptyRangeIsNoop) {
  pt::ThreadPool pool(2);
  std::atomic<int> calls{0};
  pt::parallel_for_static(pool, 5, 5, [&](std::size_t, std::size_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForStatic, NonZeroBase) {
  pt::ThreadPool pool(3);
  std::atomic<long> sum{0};
  pt::parallel_for_static(pool, 10, 20, [&](std::size_t lo, std::size_t hi) {
    long s = 0;
    for (std::size_t i = lo; i < hi; ++i) s += static_cast<long>(i);
    sum += s;
  });
  EXPECT_EQ(sum.load(), 145); // 10+...+19
}

TEST(ParallelForDynamic, CoversRangeExactlyOnce) {
  pt::ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pt::parallel_for_dynamic(pool, 0, 1000, 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) touched[i]++;
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForDynamic, ChunkZeroTreatedAsOne) {
  pt::ThreadPool pool(2);
  std::vector<std::atomic<int>> touched(10);
  pt::parallel_for_dynamic(pool, 0, 10, 0, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) touched[i]++;
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForDynamic, EmptyRangeIsNoop) {
  pt::ThreadPool pool(2);
  std::atomic<int> calls{0};
  pt::parallel_for_dynamic(pool, 9, 3, 4, [&](std::size_t, std::size_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

} // namespace
