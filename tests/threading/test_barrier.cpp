// Blocking and spinning barrier semantics.
#include "threading/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace {

template <class Barrier>
void phase_consistency_check(Barrier& bar, std::size_t threads, int phases) {
  // Every thread increments a per-phase counter, then crosses the barrier;
  // after the barrier the counter for the finished phase must equal the
  // thread count — a direct detection of barrier leaks.
  std::vector<std::atomic<int>> counts(static_cast<std::size_t>(phases));
  std::vector<std::thread> ts;
  std::atomic<bool> failed{false};
  for (std::size_t t = 0; t < threads; ++t) {
    ts.emplace_back([&] {
      for (int p = 0; p < phases; ++p) {
        counts[static_cast<std::size_t>(p)]++;
        bar.wait();
        if (counts[static_cast<std::size_t>(p)].load() !=
            static_cast<int>(threads)) {
          failed = true;
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(failed.load());
}

TEST(BlockingBarrier, PhaseConsistencyAcrossIterations) {
  pt::BlockingBarrier bar(4);
  phase_consistency_check(bar, 4, 25);
}

TEST(SpinBarrier, PhaseConsistencyAcrossIterations) {
  pt::SpinBarrier bar(4);
  phase_consistency_check(bar, 4, 25);
}

TEST(BlockingBarrier, ExactlyOneSerialThreadPerGeneration) {
  pt::BlockingBarrier bar(3);
  std::atomic<int> serial_count{0};
  std::vector<std::thread> ts;
  constexpr int kGens = 20;
  for (int t = 0; t < 3; ++t) {
    ts.emplace_back([&] {
      for (int g = 0; g < kGens; ++g) {
        if (bar.wait()) serial_count++;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(serial_count.load(), kGens);
}

TEST(SpinBarrier, ExactlyOneSerialThreadPerGeneration) {
  pt::SpinBarrier bar(3);
  std::atomic<int> serial_count{0};
  std::vector<std::thread> ts;
  constexpr int kGens = 20;
  for (int t = 0; t < 3; ++t) {
    ts.emplace_back([&] {
      for (int g = 0; g < kGens; ++g) {
        if (bar.wait()) serial_count++;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(serial_count.load(), kGens);
}

TEST(BlockingBarrier, SinglePartyNeverBlocks) {
  pt::BlockingBarrier bar(1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(bar.wait());
}

TEST(SpinBarrier, SinglePartyNeverBlocks) {
  pt::SpinBarrier bar(1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(bar.wait());
}

TEST(Barriers, PartiesAccessors) {
  pt::BlockingBarrier b(5);
  pt::SpinBarrier s(7);
  EXPECT_EQ(b.parties(), 5u);
  EXPECT_EQ(s.parties(), 7u);
}

} // namespace
