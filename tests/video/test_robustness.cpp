// Decoder robustness: corrupted or truncated bitstreams must raise
// exceptions, never crash or loop forever.
#include "video/video.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace video;

EncodedVideo small_stream() {
  EncoderConfig cfg;
  cfg.width = 48;
  cfg.height = 32;
  cfg.frames = 3;
  cfg.gop = 2;
  cfg.qp = 10;
  return encode_video(cfg).video;
}

TEST(Robustness, TruncatedPayloadThrows) {
  EncodedVideo v = small_stream();
  for (std::size_t keep : {std::size_t{1}, std::size_t{4},
                           v.frames[0].payload.size() / 2}) {
    EncodedVideo cut = v;
    cut.frames[0].payload.resize(keep);
    EXPECT_THROW(decode_video_seq(cut), std::exception) << "keep=" << keep;
  }
}

TEST(Robustness, BitFlippedPayloadsNeverCrash) {
  const EncodedVideo v = small_stream();
  std::mt19937 rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    EncodedVideo mutated = v;
    auto& payload =
        mutated.frames[rng() % mutated.frames.size()].payload;
    if (payload.empty()) continue;
    // Flip 1-4 random bits in the entropy-coded body (leave the few header
    // bytes intact so dimensions stay bounded and decode cost stays small).
    const std::size_t body_start = payload.size() / 4 + 1;
    if (body_start >= payload.size()) continue;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      payload[body_start + rng() % (payload.size() - body_start)] ^=
          static_cast<std::uint8_t>(1u << (rng() % 8));
    }
    // Either decodes to *something* or throws; both are acceptable.
    try {
      const auto checksums = decode_video_seq(mutated);
      EXPECT_EQ(checksums.size(), mutated.frames.size());
    } catch (const std::exception&) {
      // fine: corruption detected
    }
  }
}

TEST(Robustness, EmptyStreamDecodesToNothing) {
  EncodedVideo empty;
  empty.width = 48;
  empty.height = 32;
  EXPECT_TRUE(decode_video_seq(empty).empty());
}

TEST(Robustness, HeaderDimensionLimitsEnforced) {
  // Hand-craft a header with an absurd mb_w.
  BitWriter bw;
  bw.put_ue(0);    // frame_num
  bw.put_ue(0);    // type I
  bw.put_ue(20);   // qp
  bw.put_ue(5000); // mb_w: over the 1024 sanity limit
  bw.put_ue(4);    // mb_h
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_THROW(parse_frame_header(br), std::runtime_error);
}

} // namespace
