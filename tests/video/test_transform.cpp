#include "video/transform.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using namespace video;

TEST(Transform, DcOnlyBlockReconstructsFlat) {
  // A flat residual becomes a pure DC coefficient and inverts exactly.
  std::int16_t flat[16];
  for (auto& v : flat) v = 10;
  std::int32_t coeffs[16];
  forward_transform4x4(flat, coeffs);
  for (int i = 1; i < 16; ++i) EXPECT_EQ(coeffs[i], 0) << "AC leak at " << i;
  EXPECT_EQ(coeffs[0], 160); // 16 * 10
  std::int16_t back[16];
  inverse_transform4x4(coeffs, back);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(back[i], 10);
}

TEST(Transform, ForwardInverseCloseToIdentity) {
  // Without quantization the pair reconstructs within a small bound (the
  // core transform pair scales exactly by 64 = 2^6, shifted out).
  std::mt19937 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::int16_t in[16];
    for (auto& v : in) v = static_cast<std::int16_t>(rng() % 511) - 255;
    std::int32_t coeffs[16];
    forward_transform4x4(in, coeffs);
    std::int16_t out[16];
    inverse_transform4x4(coeffs, out);
    for (int i = 0; i < 16; ++i) {
      EXPECT_NEAR(out[i], in[i], 1) << "trial " << trial << " idx " << i;
    }
  }
}

TEST(Transform, QuantizationIsLossyButBounded) {
  std::int32_t coeffs[16];
  for (int i = 0; i < 16; ++i) coeffs[i] = i * 17 - 100;
  std::int16_t levels[16];
  quantize4x4(coeffs, levels, 8);
  std::int32_t back[16];
  dequantize4x4(levels, back, 8);
  for (int i = 0; i < 16; ++i) {
    EXPECT_LE(std::abs(back[i] - coeffs[i]), 4); // half step
  }
}

TEST(Transform, QuantizeRoundsToNearest) {
  const std::int32_t in[16] = {7, 8, 9, -7, -8, -9, 0, 4, -4, 12, 100, -100, 3, -3, 1, -1};
  std::int16_t lv[16];
  quantize4x4(in, lv, 8);
  EXPECT_EQ(lv[0], 1);  // 7/8 rounds to 1 (7+4)/8
  EXPECT_EQ(lv[1], 1);  // 8/8
  EXPECT_EQ(lv[2], 1);  // 9/8
  EXPECT_EQ(lv[3], -1);
  EXPECT_EQ(lv[6], 0);
  EXPECT_EQ(lv[7], 1);  // (4+4)/8
  EXPECT_EQ(lv[10], 13); // (100+4)/8 = 13
}

TEST(Transform, QpToStepDoublesEverySix) {
  EXPECT_EQ(qp_to_step(0), 1);
  EXPECT_EQ(qp_to_step(6), 2);
  EXPECT_EQ(qp_to_step(12), 4);
  EXPECT_EQ(qp_to_step(18), 8);
  EXPECT_EQ(qp_to_step(24), 16);
  EXPECT_GE(qp_to_step(-5), 1);  // clamped
  EXPECT_GT(qp_to_step(51), 300);
}

TEST(Transform, ZigzagIsAPermutation) {
  bool seen[16] = {};
  for (int i = 0; i < 16; ++i) {
    ASSERT_GE(kZigzag4x4[i], 0);
    ASSERT_LT(kZigzag4x4[i], 16);
    EXPECT_FALSE(seen[kZigzag4x4[i]]);
    seen[kZigzag4x4[i]] = true;
  }
  EXPECT_EQ(kZigzag4x4[0], 0);  // starts at DC
  EXPECT_EQ(kZigzag4x4[15], 15); // ends at highest frequency
}

} // namespace
