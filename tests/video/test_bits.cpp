#include "video/bits.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using video::BitReader;
using video::BitWriter;

TEST(Bits, RawBitsRoundTrip) {
  BitWriter bw;
  bw.put_bits(0b101, 3);
  bw.put_bits(0xFF, 8);
  bw.put_bits(0, 5);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.get_bits(3), 0b101u);
  EXPECT_EQ(br.get_bits(8), 0xFFu);
  EXPECT_EQ(br.get_bits(5), 0u);
}

TEST(Bits, UeKnownCodes) {
  // ue(0)=1, ue(1)=010, ue(2)=011, ue(3)=00100...
  BitWriter bw;
  bw.put_ue(0);
  bw.put_ue(1);
  bw.put_ue(2);
  bw.put_ue(3);
  EXPECT_EQ(bw.bit_count(), 1u + 3 + 3 + 5);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  EXPECT_EQ(br.get_ue(), 0u);
  EXPECT_EQ(br.get_ue(), 1u);
  EXPECT_EQ(br.get_ue(), 2u);
  EXPECT_EQ(br.get_ue(), 3u);
}

TEST(Bits, SeMappingOrder) {
  // H.264 mapping: 0, 1, -1, 2, -2, ...
  BitWriter bw;
  for (int v : {0, 1, -1, 2, -2, 7, -7}) bw.put_se(v);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (int v : {0, 1, -1, 2, -2, 7, -7}) EXPECT_EQ(br.get_se(), v);
}

TEST(Bits, RandomUeSeRoundTrip) {
  std::mt19937 rng(99);
  std::vector<std::uint32_t> ues;
  std::vector<std::int32_t> ses;
  BitWriter bw;
  for (int i = 0; i < 2000; ++i) {
    const std::uint32_t u = rng() % 100000;
    const std::int32_t s = static_cast<std::int32_t>(rng() % 20001) - 10000;
    ues.push_back(u);
    ses.push_back(s);
    bw.put_ue(u);
    bw.put_se(s);
  }
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(br.get_ue(), ues[static_cast<std::size_t>(i)]);
    EXPECT_EQ(br.get_se(), ses[static_cast<std::size_t>(i)]);
  }
}

TEST(Bits, ReaderThrowsPastEnd) {
  BitWriter bw;
  bw.put_bits(0b1, 1);
  const auto bytes = bw.finish(); // 1 byte after padding
  BitReader br(bytes);
  br.get_bits(8);
  EXPECT_THROW(br.get_bits(1), std::out_of_range);
}

TEST(Bits, MalformedUeThrows) {
  // 40 zero bits: longer than any legal ue prefix.
  std::vector<std::uint8_t> zeros(5, 0);
  BitReader br(zeros);
  EXPECT_THROW(br.get_ue(), std::out_of_range);
}

TEST(Bits, BitPositionTracksConsumption) {
  BitWriter bw;
  bw.put_bits(0xABCD, 16);
  const auto bytes = bw.finish();
  BitReader br_bytes(bytes);
  EXPECT_EQ(br_bytes.bit_position(), 0u);
  br_bytes.get_bits(5);
  EXPECT_EQ(br_bytes.bit_position(), 5u);
}

} // namespace
