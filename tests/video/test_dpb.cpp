#include "video/dpb.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace video;

TEST(Dpb, FetchReleaseCycle) {
  DecodedPictureBuffer dpb(2, 16, 16);
  EXPECT_EQ(dpb.slots(), 2u);
  const int a = dpb.fetch_free();
  const int b = dpb.fetch_free();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(dpb.fetch_free(), -1); // exhausted
  EXPECT_EQ(dpb.busy_count(), 2u);
  dpb.release(a);
  EXPECT_EQ(dpb.busy_count(), 1u);
  EXPECT_EQ(dpb.fetch_free(), a); // slot reusable
}

TEST(Dpb, DoubleReleaseThrows) {
  DecodedPictureBuffer dpb(1, 8, 8);
  const int a = dpb.fetch_free();
  dpb.release(a);
  EXPECT_THROW(dpb.release(a), std::logic_error);
  EXPECT_THROW(dpb.release(99), std::logic_error);
  EXPECT_THROW(dpb.release(-1), std::logic_error);
}

TEST(Dpb, PicturesHaveRequestedShape) {
  DecodedPictureBuffer dpb(3, 32, 16);
  const int s = dpb.fetch_free();
  VideoFrame& f = dpb.picture(s);
  EXPECT_EQ(f.width, 32);
  EXPECT_EQ(f.height, 16);
  EXPECT_EQ(f.y.size(), 512u);
  f.at(5, 5) = 77; // writable
  EXPECT_EQ(dpb.picture(s).at(5, 5), 77);
}

TEST(Pib, AllocateRetireCycle) {
  PictureInfoBuffer pib(2);
  const int a = pib.allocate(PictureInfo{7, FrameType::I, 1});
  const int b = pib.allocate(PictureInfo{8, FrameType::P, 2});
  EXPECT_GE(a, 0);
  EXPECT_GE(b, 0);
  EXPECT_EQ(pib.allocate(PictureInfo{}), -1); // full
  EXPECT_EQ(pib.live_count(), 2u);
  EXPECT_EQ(pib.info(a).frame_num, 7u);
  EXPECT_EQ(pib.info(b).type, FrameType::P);
  pib.retire(a);
  EXPECT_EQ(pib.live_count(), 1u);
  EXPECT_THROW(pib.retire(a), std::logic_error);
  EXPECT_GE(pib.allocate(PictureInfo{9, FrameType::I, 3}), 0);
}

} // namespace
