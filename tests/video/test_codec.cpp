// Encoder/decoder integration: header parsing, entropy round-trip, decoder
// equality with the encoder's reconstruction loop, and quality sanity.
#include "video/video.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using namespace video;

EncoderConfig small_cfg() {
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.frames = 6;
  cfg.gop = 3;
  cfg.qp = 12;
  cfg.search_range = 3;
  return cfg;
}

TEST(Codec, EncodeProducesNonEmptyPayloads) {
  const EncodeResult enc = encode_video(small_cfg());
  ASSERT_EQ(enc.video.frames.size(), 6u);
  for (const auto& f : enc.video.frames) EXPECT_GT(f.payload.size(), 10u);
  EXPECT_EQ(enc.recon_checksums.size(), 6u);
  EXPECT_GT(enc.video.total_bytes(), 0u);
}

TEST(Codec, HeaderRoundTrip) {
  const EncodeResult enc = encode_video(small_cfg());
  BitReader br(enc.video.frames[0].payload);
  const FrameHeader hdr = parse_frame_header(br);
  EXPECT_EQ(hdr.frame_num, 0u);
  EXPECT_EQ(hdr.type, FrameType::I);
  EXPECT_EQ(hdr.qp, 12);
  EXPECT_EQ(hdr.mb_w, 4);
  EXPECT_EQ(hdr.mb_h, 3);
  EXPECT_EQ(hdr.width(), 64);
  EXPECT_EQ(hdr.height(), 48);
  EXPECT_EQ(hdr.mb_count(), 12u);

  // Second frame of a gop=3 stream is a P frame.
  BitReader br2(enc.video.frames[1].payload);
  EXPECT_EQ(parse_frame_header(br2).type, FrameType::P);
}

TEST(Codec, DecoderMatchesEncoderReconstructionExactly) {
  const EncodeResult enc = encode_video(small_cfg());
  const auto checksums = decode_video_seq(enc.video);
  EXPECT_EQ(checksums, enc.recon_checksums);
}

TEST(Codec, DecoderMatchesAcrossQps) {
  for (int qp : {0, 8, 20, 30}) {
    EncoderConfig cfg = small_cfg();
    cfg.qp = qp;
    const EncodeResult enc = encode_video(cfg);
    EXPECT_EQ(decode_video_seq(enc.video), enc.recon_checksums) << "qp=" << qp;
  }
}

TEST(Codec, LowQpReconstructionIsHighQuality) {
  EncoderConfig cfg = small_cfg();
  cfg.qp = 0; // step 1: near-lossless
  cfg.frames = 2;
  const EncodeResult enc = encode_video(cfg);

  // Decode and compare to the original source frame.
  BitReader br(enc.video.frames[0].payload);
  const FrameHeader hdr = parse_frame_header(br);
  std::vector<MbSyntax> mbs(hdr.mb_count());
  entropy_decode_frame(br, hdr, mbs.data());
  VideoFrame cur(hdr.width(), hdr.height());
  reconstruct_frame(hdr, mbs.data(), cur, nullptr);

  const VideoFrame src = synth_source_frame(0, cfg.width, cfg.height);
  long worst = 0;
  for (std::size_t i = 0; i < src.y.size(); ++i) {
    worst = std::max<long>(worst, std::abs(int(src.y[i]) - int(cur.y[i])));
  }
  EXPECT_LE(worst, 2) << "step-1 quantization must be near-lossless";
}

TEST(Codec, HigherQpShrinksBitstream) {
  EncoderConfig low = small_cfg(), high = small_cfg();
  low.qp = 4;
  high.qp = 28;
  EXPECT_GT(encode_video(low).video.total_bytes(),
            encode_video(high).video.total_bytes() * 2);
}

TEST(Codec, PFramesAreSmallerThanIFrames) {
  // Temporal prediction must pay off on this mildly-moving content.
  const EncodeResult enc = encode_video(small_cfg());
  const std::size_t i_size = enc.video.frames[0].payload.size();
  const std::size_t p_size = enc.video.frames[1].payload.size();
  EXPECT_LT(p_size, i_size);
}

TEST(Codec, IntraDcPredictionUsesAvailableNeighbors) {
  VideoFrame f(32, 32);
  for (auto& p : f.y) p = 100;
  EXPECT_EQ(intra_dc_prediction(f, 0, 0), 128); // no neighbors
  EXPECT_EQ(intra_dc_prediction(f, 1, 0), 100); // left only
  EXPECT_EQ(intra_dc_prediction(f, 0, 1), 100); // top only
  EXPECT_EQ(intra_dc_prediction(f, 1, 1), 100); // both
}

TEST(Codec, RejectsBadDimensions) {
  EncoderConfig cfg = small_cfg();
  cfg.width = 60; // not a multiple of 16
  EXPECT_THROW(encode_video(cfg), std::invalid_argument);
  cfg = small_cfg();
  cfg.frames = 0;
  EXPECT_THROW(encode_video(cfg), std::invalid_argument);
}

TEST(Codec, ParseRejectsGarbage) {
  std::vector<std::uint8_t> junk{0x00, 0x00, 0x00, 0x00, 0x00};
  BitReader br(junk);
  EXPECT_THROW(parse_frame_header(br), std::exception);
}

TEST(Codec, ChecksumDiscriminatesFrames) {
  const VideoFrame a = synth_source_frame(0, 64, 48);
  const VideoFrame b = synth_source_frame(1, 64, 48);
  EXPECT_NE(a.checksum(), b.checksum());
  EXPECT_EQ(a.checksum(), synth_source_frame(0, 64, 48).checksum());
}

TEST(Codec, WavefrontOrderIsRasterEquivalent) {
  // Reconstructing an I frame in an explicit wavefront order must produce
  // the same picture as raster order (validates the dependency claim the
  // parallel variants rely on).
  const EncodeResult enc = encode_video(small_cfg());
  BitReader br(enc.video.frames[0].payload);
  const FrameHeader hdr = parse_frame_header(br);
  std::vector<MbSyntax> mbs(hdr.mb_count());
  entropy_decode_frame(br, hdr, mbs.data());

  VideoFrame raster(hdr.width(), hdr.height());
  reconstruct_frame(hdr, mbs.data(), raster, nullptr);

  VideoFrame wave(hdr.width(), hdr.height());
  // Anti-diagonal wavefront: all MBs with x+y == d, increasing d.
  for (int d = 0; d <= hdr.mb_w + hdr.mb_h - 2; ++d) {
    for (int y = 0; y < hdr.mb_h; ++y) {
      const int x = d - y;
      if (x < 0 || x >= hdr.mb_w) continue;
      reconstruct_mb(hdr, mbs.data(), x, y, wave, nullptr);
    }
  }
  EXPECT_EQ(raster.y, wave.y);
}

} // namespace
