// oss::service + H264DecService: admission control, per-stream
// backpressure (block vs fail-fast), mid-stream close/drain hygiene, and
// per-stream checksum parity with the sequential decoder under concurrent
// streams.  This binary also runs in the env matrix (run_matrix.sh phase 2)
// across scheduler × dep-shard × pool combinations.
#include "apps/h264dec/h264dec_service.hpp"
#include "service/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace {

using oss::service::Config;
using oss::service::Reject;
using oss::service::Service;
using oss::service::StreamPtr;
using oss::service::Submit;
using oss::service::Window;

oss::RuntimeConfig rt_config(std::size_t threads = 4) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::from_env();
  cfg.num_threads = threads;
  return cfg;
}

/// Sets an env var for the scope (mirrors tests/ompss/test_config.cpp).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old) saved_ = old;
    had_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, saved_;
  bool had_ = false;
};

// --- admission ---------------------------------------------------------------

TEST(Service, AdmissionRejectsAtCapacityAndRecoversOnClose) {
  oss::Runtime rt(rt_config());
  Config cfg;
  cfg.max_streams = 2;
  Service svc(rt, cfg);

  Reject why = Reject::None;
  StreamPtr a = svc.open("a", &why);
  ASSERT_TRUE(a);
  EXPECT_EQ(why, Reject::None);
  StreamPtr b = svc.open("b");
  ASSERT_TRUE(b);

  StreamPtr c = svc.open("c", &why);
  EXPECT_FALSE(c);
  EXPECT_EQ(why, Reject::Capacity);
  EXPECT_STREQ(oss::service::reject_name(why), "capacity");

  // Closing a stream frees its admission slot.
  a->close();
  EXPECT_FALSE(a->open());
  c = svc.open("c", &why);
  ASSERT_TRUE(c);
  EXPECT_EQ(why, Reject::None);

  const Service::Stats s = svc.stats();
  EXPECT_EQ(s.opened, 3u);
  EXPECT_EQ(s.closed, 1u);
  EXPECT_EQ(s.rejected_capacity, 1u);
  EXPECT_EQ(s.active, 2u);
}

TEST(Service, OpenAfterServiceCloseIsRejected) {
  oss::Runtime rt(rt_config());
  Service svc(rt, Config{});
  StreamPtr a = svc.open("a");
  ASSERT_TRUE(a);
  svc.close();
  EXPECT_FALSE(a->open()); // service close drains its streams

  Reject why = Reject::None;
  EXPECT_FALSE(svc.open("late", &why));
  EXPECT_EQ(why, Reject::Closed);
  EXPECT_EQ(svc.stats().rejected_closed, 1u);
}

// --- backpressure ------------------------------------------------------------

/// A latch the test holds shut while window slots are occupied.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  void release() {
    {
      std::lock_guard lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void wait() {
    std::unique_lock lock(mu);
    cv.wait(lock, [this] { return open; });
  }
};

TEST(Service, WindowFailFastBouncesWhenFull) {
  oss::Runtime rt(rt_config());
  Config cfg;
  cfg.window = 2;
  Service svc(rt, cfg);
  StreamPtr s = svc.open("bp");
  ASSERT_TRUE(s);

  Gate gate;
  // Fill the window with units whose final task releases on completion.
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(s->window().acquire(Submit::FailFast));
    s->task("unit").spawn([&gate, s] {
      gate.wait();
      s->window().release();
    });
  }
  EXPECT_EQ(s->window().in_flight(), 2u);
  EXPECT_FALSE(s->window().acquire(Submit::FailFast)); // full → bounce
  EXPECT_EQ(s->window().rejected(), 1u);

  gate.release();
  s->drain();
  EXPECT_EQ(s->window().in_flight(), 0u);
  EXPECT_TRUE(s->window().acquire(Submit::FailFast)); // slots free again
  s->window().release();
  EXPECT_EQ(s->window().peak(), 2u); // never exceeded the bound
}

TEST(Service, WindowBlockWaitsForAFreedSlot) {
  oss::Runtime rt(rt_config());
  Config cfg;
  cfg.window = 1;
  Service svc(rt, cfg);
  StreamPtr s = svc.open("bp");
  ASSERT_TRUE(s);

  Gate gate;
  ASSERT_TRUE(s->window().acquire(Submit::Block));
  s->task("unit").spawn([&gate, s] {
    gate.wait();
    s->window().release();
  });

  std::atomic<bool> acquired{false};
  std::thread submitter([&] {
    // Blocks until the in-flight unit releases.
    ASSERT_TRUE(s->window().acquire(Submit::Block));
    acquired.store(true);
    s->window().release();
  });
  // The submitter must be parked, not bounced.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());

  gate.release();
  submitter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_GE(s->window().blocked(), 1u);
  s->drain();
}

TEST(Service, CloseFailsBlockedSubmitters) {
  oss::Runtime rt(rt_config());
  Config cfg;
  cfg.window = 1;
  Service svc(rt, cfg);
  StreamPtr s = svc.open("bp");
  ASSERT_TRUE(s);

  Gate gate;
  ASSERT_TRUE(s->window().acquire(Submit::Block));
  s->task("unit").spawn([&gate, s] {
    gate.wait();
    s->window().release();
  });

  std::atomic<int> result{-1};
  std::thread submitter(
      [&] { result.store(s->window().acquire(Submit::Block) ? 1 : 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(result.load(), -1); // parked on the full window

  // close() must first unblock the submitter (with failure), then drain the
  // admitted unit — which is still gated, so release the gate from here.
  std::thread closer([&] { s->close(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.release();
  closer.join();
  submitter.join();
  EXPECT_EQ(result.load(), 0);
  EXPECT_FALSE(s->open());
  EXPECT_FALSE(s->window().acquire(Submit::Block)); // closed stays closed
}

// --- decode sessions ---------------------------------------------------------

TEST(H264DecService, ChecksumParityWithSequentialDecoder) {
  const auto w = apps::H264Workload::make(benchcore::Scale::Tiny);
  const auto expected = apps::h264dec_seq(w);

  oss::Runtime rt(rt_config());
  apps::H264DecService svc(rt, Config{});
  auto session = svc.open("s0", w);
  ASSERT_TRUE(session);
  for (const auto& frame : w.video.frames) {
    ASSERT_TRUE(session->submit(frame));
  }
  session->finish();
  EXPECT_EQ(session->checksums(), expected);
  ASSERT_EQ(session->latencies_ns().size(), expected.size());
  for (std::uint64_t ns : session->latencies_ns()) EXPECT_GT(ns, 0u);
  EXPECT_LE(session->window().peak(), session->window().depth());
  session->close();
}

TEST(H264DecService, ConcurrentStreamsDecodeIndependently) {
  const auto w = apps::H264Workload::make(benchcore::Scale::Tiny);
  const auto expected = apps::h264dec_seq(w);
  constexpr int kStreams = 4;

  oss::Runtime rt(rt_config());
  Config cfg;
  cfg.max_streams = kStreams;
  cfg.window = 3;
  apps::H264DecService svc(rt, cfg);

  std::vector<apps::H264DecSessionPtr> sessions;
  for (int i = 0; i < kStreams; ++i) {
    auto s = svc.open("s" + std::to_string(i), w);
    ASSERT_TRUE(s);
    sessions.push_back(std::move(s));
  }

  // One submitter thread per stream, all pumping concurrently with the
  // Block policy (backpressure engaged: window 3 < frame count).
  std::vector<std::thread> submitters;
  submitters.reserve(kStreams);
  for (auto& s : sessions) {
    submitters.emplace_back([&s, &w] {
      for (int rep = 0; rep < 2; ++rep) {
        for (const auto& frame : w.video.frames) {
          ASSERT_TRUE(s->submit(frame, Submit::Block));
        }
      }
      s->finish();
    });
  }
  for (auto& t : submitters) t.join();

  for (auto& s : sessions) {
    ASSERT_EQ(s->checksums().size(), 2 * expected.size());
    for (std::size_t i = 0; i < s->checksums().size(); ++i) {
      // Frame 0 of rep 2 is decoded as a P/I frame per its own header, so
      // repeating the whole GOP-aligned stream repeats the checksums.
      EXPECT_EQ(s->checksums()[i], expected[i % expected.size()]) << i;
    }
    EXPECT_LE(s->window().peak(), s->window().depth());
    s->close();
  }
  rt.barrier();
  EXPECT_EQ(rt.pending_tasks(), 0u);
}

TEST(H264DecService, MidStreamCloseDrainsWithoutLeaks) {
  const auto w = apps::H264Workload::make(benchcore::Scale::Tiny);
  const auto expected = apps::h264dec_seq(w);

  oss::Runtime rt(rt_config());
  Config cfg;
  cfg.window = 2;
  apps::H264DecService svc(rt, cfg);
  auto session = svc.open("s0", w);
  ASSERT_TRUE(session);

  const std::size_t submitted = w.video.frames.size() / 2;
  for (std::size_t i = 0; i < submitted; ++i) {
    ASSERT_TRUE(session->submit(w.video.frames[i]));
  }
  session->close(); // drain, not cancel: admitted frames complete

  ASSERT_EQ(session->checksums().size(), submitted);
  for (std::size_t i = 0; i < submitted; ++i) {
    EXPECT_EQ(session->checksums()[i], expected[i]) << i;
  }
  EXPECT_FALSE(session->submit(w.video.frames[0])); // closed window bounces

  rt.barrier();
  EXPECT_EQ(rt.pending_tasks(), 0u);
  const oss::StatsSnapshot stats = rt.stats();
  EXPECT_EQ(stats.tasks_spawned, stats.tasks_executed); // nothing leaked
}

TEST(H264DecService, SessionsAreRejectedAtCapacity) {
  const auto w = apps::H264Workload::make(benchcore::Scale::Tiny);
  oss::Runtime rt(rt_config());
  Config cfg;
  cfg.max_streams = 1;
  apps::H264DecService svc(rt, cfg);

  auto a = svc.open("a", w);
  ASSERT_TRUE(a);
  Reject why = Reject::None;
  EXPECT_FALSE(svc.open("b", w, &why));
  EXPECT_EQ(why, Reject::Capacity);
  a->close();
  EXPECT_TRUE(svc.open("b", w, &why));
}

// --- knobs -------------------------------------------------------------------

TEST(ServiceConfig, FromEnvReadsAndValidatesKnobs) {
  {
    ScopedEnv ms("OSS_SERVICE_MAX_STREAMS", "7");
    ScopedEnv wi("OSS_SERVICE_WINDOW", "5");
    const Config c = Config::from_env();
    EXPECT_EQ(c.max_streams, 7u);
    EXPECT_EQ(c.window, 5u);
  }
  // The OSS_SERVICE_* family uses the same strict integer parsing as every
  // other OSS_* knob: negatives must throw, not wrap through strtoull.
  for (const char* bad : {"-1", "+1", " 3", "3 ", "zz", ""}) {
    ScopedEnv ms("OSS_SERVICE_MAX_STREAMS", bad);
    EXPECT_THROW((void)Config::from_env(), std::invalid_argument)
        << "value '" << bad << "'";
  }
  {
    ScopedEnv wi("OSS_SERVICE_WINDOW", "-9");
    EXPECT_THROW((void)Config::from_env(), std::invalid_argument);
  }
  {
    // 0 would deadlock every submit; clamped to 1.
    ScopedEnv ms("OSS_SERVICE_MAX_STREAMS", "0");
    ScopedEnv wi("OSS_SERVICE_WINDOW", "0");
    const Config c = Config::from_env();
    EXPECT_EQ(c.max_streams, 1u);
    EXPECT_EQ(c.window, 1u);
  }
}

} // namespace
