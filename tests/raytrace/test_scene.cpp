#include "raytrace/scene.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

TEST(Scene, ProceduralIsDeterministic) {
  const cray::Scene a = cray::Scene::procedural(8, 3);
  const cray::Scene b = cray::Scene::procedural(8, 3);
  ASSERT_EQ(a.spheres.size(), b.spheres.size());
  EXPECT_EQ(a.spheres.size(), 9u); // 8 + ground
  for (std::size_t i = 0; i < a.spheres.size(); ++i) {
    EXPECT_EQ(a.spheres[i].center, b.spheres[i].center);
    EXPECT_EQ(a.spheres[i].radius, b.spheres[i].radius);
  }
  EXPECT_GE(a.lights.size(), 1u);
}

TEST(Scene, DifferentSeedsDiffer) {
  const cray::Scene a = cray::Scene::procedural(8, 3);
  const cray::Scene b = cray::Scene::procedural(8, 4);
  EXPECT_FALSE(a.spheres[1].center == b.spheres[1].center);
}

TEST(Scene, ParseRoundTrip) {
  const cray::Scene a = cray::Scene::procedural(5, 11);
  const cray::Scene b = cray::Scene::parse(a.serialize());
  ASSERT_EQ(a.spheres.size(), b.spheres.size());
  ASSERT_EQ(a.lights.size(), b.lights.size());
  for (std::size_t i = 0; i < a.spheres.size(); ++i) {
    EXPECT_NEAR(a.spheres[i].center.x, b.spheres[i].center.x, 1e-4);
    EXPECT_NEAR(a.spheres[i].radius, b.spheres[i].radius, 1e-4);
    EXPECT_NEAR(a.spheres[i].material.reflectivity,
                b.spheres[i].material.reflectivity, 1e-4);
  }
  EXPECT_NEAR(a.camera.fov_deg, b.camera.fov_deg, 1e-4);
}

TEST(Scene, ParseAcceptsCommentsAndBlankLines) {
  const cray::Scene s = cray::Scene::parse(
      "# a scene\n"
      "\n"
      "s 0 0 0 1  1 0 0  30 0.5\n"
      "l 1 2 3\n"
      "c 0 0 -5 45 0 0 0\n");
  ASSERT_EQ(s.spheres.size(), 1u);
  EXPECT_DOUBLE_EQ(s.spheres[0].material.reflectivity, 0.5);
  ASSERT_EQ(s.lights.size(), 1u);
  EXPECT_DOUBLE_EQ(s.camera.fov_deg, 45.0);
}

TEST(Scene, ParseRejectsMalformedRecords) {
  EXPECT_THROW(cray::Scene::parse("s 1 2 3\n"), std::runtime_error);
  EXPECT_THROW(cray::Scene::parse("q 1 2 3\n"), std::runtime_error);
  EXPECT_THROW(cray::Scene::parse("l 1 2\n"), std::runtime_error);
}

} // namespace
