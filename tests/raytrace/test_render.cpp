#include "raytrace/render.hpp"

#include "img/synth.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

TEST(Render, DeterministicAcrossRuns) {
  const cray::Scene scene = cray::Scene::procedural(6, 1);
  img::Image a(48, 32, 3), b(48, 32, 3);
  cray::render(scene, a);
  cray::render(scene, b);
  EXPECT_TRUE(a == b);
}

TEST(Render, RowRangesComposeToWholeImage) {
  const cray::Scene scene = cray::Scene::procedural(6, 2);
  cray::RenderOptions opts;
  img::Image whole(40, 30, 3), pieces(40, 30, 3);
  cray::render(scene, whole, opts);
  cray::render_rows(scene, pieces, opts, 0, 11);
  cray::render_rows(scene, pieces, opts, 11, 23);
  cray::render_rows(scene, pieces, opts, 23, 30);
  EXPECT_TRUE(whole == pieces);
}

TEST(Render, ProducesNonTrivialImage) {
  const cray::Scene scene = cray::Scene::procedural(8, 5);
  img::Image out(64, 48, 3);
  cray::render(scene, out);
  // Image must contain spread of intensities (sky, spheres, shadows).
  int min = 255, max = 0;
  for (std::size_t i = 0; i < out.size_bytes(); ++i) {
    min = std::min<int>(min, out.data()[i]);
    max = std::max<int>(max, out.data()[i]);
  }
  EXPECT_GT(max - min, 80);
}

TEST(Render, EmptySceneRendersSkyGradient) {
  cray::Scene scene;
  scene.camera.position = {0, 0, -5};
  scene.camera.target = {0, 0, 0};
  img::Image out(16, 16, 3);
  cray::render(scene, out);
  // Top of frame (sky up) must be brighter blue than bottom.
  EXPECT_GT(out.at(8, 0, 2), out.at(8, 15, 2));
}

TEST(Render, ReflectiveSpheresChangeWithDepth) {
  cray::Scene scene = cray::Scene::procedural(8, 5);
  for (auto& s : scene.spheres) s.material.reflectivity = 0.6;
  cray::RenderOptions shallow, deep;
  shallow.max_depth = 1;
  deep.max_depth = 4;
  img::Image a(48, 32, 3), b(48, 32, 3);
  cray::render(scene, a, shallow);
  cray::render(scene, b, deep);
  EXPECT_GT(img::max_abs_diff(a, b), 5) << "reflections must contribute";
}

TEST(Render, SupersamplingSmoothsEdges) {
  const cray::Scene scene = cray::Scene::procedural(4, 9);
  cray::RenderOptions ss1, ss2;
  ss1.supersample = 1;
  ss2.supersample = 2;
  img::Image a(32, 24, 3), b(32, 24, 3);
  cray::render(scene, a, ss1);
  cray::render(scene, b, ss2);
  EXPECT_GT(img::max_abs_diff(a, b), 0); // different sampling
}

TEST(Render, RequiresRgbOutput) {
  const cray::Scene scene = cray::Scene::procedural(2, 1);
  img::Image gray(8, 8, 1);
  EXPECT_THROW(cray::render(scene, gray), std::invalid_argument);
}

} // namespace
