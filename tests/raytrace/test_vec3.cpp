#include "raytrace/vec3.hpp"

#include <gtest/gtest.h>

namespace {

using cray::Vec3;

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
  EXPECT_EQ(a * b, Vec3(4, 10, 18)); // component-wise
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_DOUBLE_EQ(Vec3(1, 2, 3).dot(Vec3(4, 5, 6)), 32.0);
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
}

TEST(Vec3, LengthAndNormalize) {
  EXPECT_DOUBLE_EQ(Vec3(3, 4, 0).length(), 5.0);
  const Vec3 n = Vec3(10, 0, 0).normalized();
  EXPECT_EQ(n, Vec3(1, 0, 0));
  EXPECT_EQ(Vec3{}.normalized(), Vec3{}); // zero-safe
}

TEST(Vec3, Reflection) {
  // Incoming 45° ray off a floor normal flips its vertical component.
  const Vec3 d = Vec3(1, -1, 0).normalized();
  const Vec3 r = d.reflect(Vec3(0, 1, 0));
  EXPECT_NEAR(r.x, d.x, 1e-12);
  EXPECT_NEAR(r.y, -d.y, 1e-12);
  EXPECT_NEAR(r.z, 0.0, 1e-12);
}

TEST(Vec3, PlusEquals) {
  Vec3 acc;
  acc += Vec3(1, 1, 1);
  acc += Vec3(2, 0, -1);
  EXPECT_EQ(acc, Vec3(3, 1, 0));
}

} // namespace
