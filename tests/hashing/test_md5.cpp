// MD5 against the RFC 1321 test suite plus streaming/boundary cases.
#include "hashing/md5.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using hashing::md5;

TEST(Md5, Rfc1321TestSuite) {
  EXPECT_EQ(md5("").hex(), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(md5("a").hex(), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(md5("abc").hex(), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(md5("message digest").hex(), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(md5("abcdefghijklmnopqrstuvwxyz").hex(),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      md5("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789").hex(),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(md5("1234567890123456789012345678901234567890123456789012345678901234"
                "5678901234567890")
                .hex(),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, StreamingMatchesOneShot) {
  const std::string data(1000, 'x');
  hashing::Md5 ctx;
  // Uneven chunk sizes crossing the 64-byte block boundary repeatedly.
  std::size_t pos = 0;
  const std::size_t chunks[] = {1, 63, 64, 65, 7, 128, 300, 372};
  for (std::size_t c : chunks) {
    ctx.update(data.data() + pos, c);
    pos += c;
  }
  ASSERT_EQ(pos, data.size());
  EXPECT_EQ(ctx.finish().hex(), md5(data).hex());
}

TEST(Md5, BlockBoundaryLengths) {
  // Lengths around the 56-byte padding threshold and 64-byte block size.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string data(len, 'q');
    hashing::Md5 a;
    a.update(data.data(), len);
    EXPECT_EQ(a.finish().hex(), md5(data).hex()) << "len=" << len;
  }
}

TEST(Md5, ResetReusesContext) {
  hashing::Md5 ctx;
  ctx.update("junk", 4);
  (void)ctx.finish();
  ctx.reset();
  ctx.update("abc", 3);
  EXPECT_EQ(ctx.finish().hex(), "900150983cd24fb0d6963f7d28e17f72");
}

TEST(Md5, DigestEqualityOperator) {
  EXPECT_TRUE(md5("same") == md5("same"));
  EXPECT_FALSE(md5("same") == md5("different"));
}

TEST(Md5, WorkloadGeneratorIsDeterministic) {
  const auto a = hashing::make_buffer_workload(4, 128, 7);
  const auto b = hashing::make_buffer_workload(4, 128, 7);
  const auto c = hashing::make_buffer_workload(4, 128, 8);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0].size(), 128u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Buffers must differ from each other.
  EXPECT_NE(a[0], a[1]);
}

} // namespace
