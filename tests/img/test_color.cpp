#include "img/color.hpp"
#include "img/synth.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

TEST(RgbCmyk, PrimaryColorsMapCorrectly) {
  img::Image rgb(4, 1, 3);
  // black, white, pure red, mid gray
  auto set = [&](int x, int r, int g, int b) {
    rgb.at(x, 0, 0) = static_cast<std::uint8_t>(r);
    rgb.at(x, 0, 1) = static_cast<std::uint8_t>(g);
    rgb.at(x, 0, 2) = static_cast<std::uint8_t>(b);
  };
  set(0, 0, 0, 0);
  set(1, 255, 255, 255);
  set(2, 255, 0, 0);
  set(3, 128, 128, 128);

  img::Image cmyk(4, 1, 4);
  img::rgb_to_cmyk(rgb, cmyk);

  // Black: K=255, CMY=0.
  EXPECT_EQ(cmyk.at(0, 0, 3), 255);
  EXPECT_EQ(cmyk.at(0, 0, 0), 0);
  // White: all zero.
  for (int c = 0; c < 4; ++c) EXPECT_EQ(cmyk.at(1, 0, c), 0);
  // Red: C=0, M=Y=255, K=0.
  EXPECT_EQ(cmyk.at(2, 0, 0), 0);
  EXPECT_EQ(cmyk.at(2, 0, 1), 255);
  EXPECT_EQ(cmyk.at(2, 0, 2), 255);
  EXPECT_EQ(cmyk.at(2, 0, 3), 0);
  // Gray: CMY=0, K=127.
  EXPECT_EQ(cmyk.at(3, 0, 0), 0);
  EXPECT_EQ(cmyk.at(3, 0, 3), 127);
}

TEST(RgbCmyk, RowRangeMatchesWholeImage) {
  const img::Image rgb = img::make_test_rgb(24, 20, 7);
  img::Image whole(24, 20, 4), pieces(24, 20, 4);
  img::rgb_to_cmyk(rgb, whole);
  img::rgb_to_cmyk_rows(rgb, pieces, 0, 7);
  img::rgb_to_cmyk_rows(rgb, pieces, 7, 20);
  EXPECT_TRUE(whole == pieces);
}

TEST(RgbCmyk, ShapeMismatchThrows) {
  const img::Image rgb = img::make_test_rgb(8, 8, 1);
  img::Image bad(8, 8, 3); // must be 4-channel
  EXPECT_THROW(img::rgb_to_cmyk(rgb, bad), std::invalid_argument);
}

TEST(YCbCr, GrayIsChromaNeutral) {
  img::Image rgb(1, 1, 3);
  rgb.at(0, 0, 0) = rgb.at(0, 0, 1) = rgb.at(0, 0, 2) = 100;
  img::Image ycc(1, 1, 3);
  img::rgb_to_ycbcr(rgb, ycc);
  EXPECT_NEAR(ycc.at(0, 0, 0), 100, 1); // Y == gray level
  EXPECT_NEAR(ycc.at(0, 0, 1), 128, 1); // Cb neutral
  EXPECT_NEAR(ycc.at(0, 0, 2), 128, 1); // Cr neutral
}

TEST(YCbCr, RoundTripIsNearlyLossless) {
  const img::Image rgb = img::make_test_rgb(32, 32, 9);
  img::Image ycc(32, 32, 3), back(32, 32, 3);
  img::rgb_to_ycbcr(rgb, ycc);
  img::ycbcr_to_rgb(ycc, back);
  EXPECT_LE(img::max_abs_diff(rgb, back), 3); // fixed-point rounding
}

TEST(YCbCr, RowRangeMatchesWholeImage) {
  const img::Image rgb = img::make_test_rgb(16, 18, 3);
  img::Image whole(16, 18, 3), pieces(16, 18, 3);
  img::rgb_to_ycbcr(rgb, whole);
  img::rgb_to_ycbcr_rows(rgb, pieces, 0, 5);
  img::rgb_to_ycbcr_rows(rgb, pieces, 5, 18);
  EXPECT_TRUE(whole == pieces);
}

} // namespace
