#include "img/ppm.hpp"
#include "img/synth.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Ppm, RgbRoundTrip) {
  const img::Image src = img::make_test_rgb(20, 14, 2);
  const std::string path = temp_path("roundtrip.ppm");
  img::write_pnm(src, path);
  const img::Image back = img::read_pnm(path);
  EXPECT_TRUE(src == back);
  std::remove(path.c_str());
}

TEST(Ppm, GrayRoundTrip) {
  const img::Image src = img::make_test_gray(15, 9, 4);
  const std::string path = temp_path("roundtrip.pgm");
  img::write_pnm(src, path);
  const img::Image back = img::read_pnm(path);
  EXPECT_TRUE(src == back);
  std::remove(path.c_str());
}

TEST(Ppm, RejectsUnsupportedChannelCount) {
  img::Image cmyk(4, 4, 4);
  EXPECT_THROW(img::write_pnm(cmyk, temp_path("bad.ppm")), std::runtime_error);
}

TEST(Ppm, MissingFileThrows) {
  EXPECT_THROW(img::read_pnm(temp_path("does_not_exist.ppm")), std::runtime_error);
}

} // namespace
