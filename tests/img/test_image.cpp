#include "img/image.hpp"
#include "img/synth.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

TEST(Image, ConstructionAndAccessors) {
  img::Image im(10, 6, 3);
  EXPECT_EQ(im.width(), 10);
  EXPECT_EQ(im.height(), 6);
  EXPECT_EQ(im.channels(), 3);
  EXPECT_EQ(im.stride(), 30u);
  EXPECT_EQ(im.size_bytes(), 180u);
  EXPECT_FALSE(im.empty());
  EXPECT_EQ(im.at(5, 3, 1), 0); // zero-initialized
}

TEST(Image, InvalidDimensionsThrow) {
  EXPECT_THROW(img::Image(-1, 4, 3), std::invalid_argument);
  EXPECT_THROW(img::Image(4, 4, 0), std::invalid_argument);
  EXPECT_THROW(img::Image(4, 4, 5), std::invalid_argument);
}

TEST(Image, AtWritesRoundTrip) {
  img::Image im(4, 4, 3);
  im.at(2, 1, 0) = 10;
  im.at(2, 1, 2) = 77;
  EXPECT_EQ(im.at(2, 1, 0), 10);
  EXPECT_EQ(im.at(2, 1, 1), 0);
  EXPECT_EQ(im.at(2, 1, 2), 77);
  EXPECT_EQ(im.row(1)[2 * 3 + 2], 77);
}

TEST(Image, FillAndEquality) {
  img::Image a(3, 3, 1);
  img::Image b(3, 3, 1);
  a.fill(9);
  EXPECT_FALSE(a == b);
  b.fill(9);
  EXPECT_TRUE(a == b);
}

TEST(Image, MaxAbsDiff) {
  img::Image a(2, 2, 1), b(2, 2, 1);
  EXPECT_EQ(img::max_abs_diff(a, b), 0);
  b.at(1, 1) = 7;
  EXPECT_EQ(img::max_abs_diff(a, b), 7);
  img::Image c(3, 2, 1);
  EXPECT_EQ(img::max_abs_diff(a, c), 256); // shape mismatch sentinel
}

TEST(Image, MismatchFraction) {
  img::Image a(2, 2, 1), b(2, 2, 1);
  EXPECT_DOUBLE_EQ(img::mismatch_fraction(a, b), 0.0);
  b.at(0, 0) = 255;
  EXPECT_DOUBLE_EQ(img::mismatch_fraction(a, b), 0.25);
  EXPECT_DOUBLE_EQ(img::mismatch_fraction(a, b, 255), 0.0); // within tolerance
}

TEST(Synth, DeterministicForSameSeed) {
  const img::Image a = img::make_test_rgb(32, 24, 5);
  const img::Image b = img::make_test_rgb(32, 24, 5);
  const img::Image c = img::make_test_rgb(32, 24, 6);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Synth, GrayHasOneChannel) {
  const img::Image g = img::make_test_gray(16, 16);
  EXPECT_EQ(g.channels(), 1);
  // Must contain some variation, not a flat image.
  int min = 255, max = 0;
  for (std::size_t i = 0; i < g.size_bytes(); ++i) {
    min = std::min<int>(min, g.data()[i]);
    max = std::max<int>(max, g.data()[i]);
  }
  EXPECT_GT(max - min, 30);
}

} // namespace
