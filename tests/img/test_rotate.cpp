#include "img/rotate.hpp"
#include "img/synth.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

TEST(Rotate, ZeroAngleIsIdentityInsideFrame) {
  const img::Image src = img::make_test_rgb(32, 32, 3);
  img::Image dst(32, 32, 3);
  img::rotate(src, dst, img::RotateSpec::degrees(0));
  EXPECT_EQ(img::max_abs_diff(src, dst), 0);
}

TEST(Rotate, FourQuarterTurnsReturnNearIdentity) {
  // 4 × 90° around the center: every interior pixel returns home
  // (edges may be clipped by the frame).
  const img::Image src = img::make_test_rgb(33, 33, 3); // odd: exact center
  img::Image a(33, 33, 3), b(33, 33, 3);
  const auto q = img::RotateSpec::degrees(90);
  img::rotate(src, a, q);
  img::rotate(a, b, q);
  img::rotate(b, a, q);
  img::rotate(a, b, q);
  // Compare an interior window to avoid border clipping.
  int worst = 0;
  for (int y = 8; y < 25; ++y) {
    for (int x = 8; x < 25; ++x) {
      for (int c = 0; c < 3; ++c) {
        worst = std::max(worst, std::abs(int(src.at(x, y, c)) - int(b.at(x, y, c))));
      }
    }
  }
  EXPECT_LE(worst, 2); // bilinear rounding only
}

TEST(Rotate, NinetyDegreesMapsAxesCorrectly) {
  // A single bright pixel right of center must move above center under a
  // +90° (counter-clockwise, y-down raster) rotation.
  img::Image src(31, 31, 1);
  src.at(25, 15) = 255; // 10 to the right of center (15,15)
  img::Image dst(31, 31, 1);
  img::rotate(src, dst, img::RotateSpec::degrees(90));
  // Find the brightest output pixel.
  int bx = -1, by = -1, best = -1;
  for (int y = 0; y < 31; ++y) {
    for (int x = 0; x < 31; ++x) {
      if (dst.at(x, y) > best) {
        best = dst.at(x, y);
        bx = x;
        by = y;
      }
    }
  }
  EXPECT_GT(best, 100);
  EXPECT_EQ(bx, 15);
  EXPECT_TRUE(by == 5 || by == 25) << "pixel must move onto the vertical axis, got y=" << by;
}

TEST(Rotate, RowRangeMatchesWholeImage) {
  const img::Image src = img::make_test_rgb(40, 30, 3);
  const auto spec = img::RotateSpec::degrees(33);
  img::Image whole(40, 30, 3), pieces(40, 30, 3);
  img::rotate(src, whole, spec);
  img::rotate_rows(src, pieces, spec, 0, 10);
  img::rotate_rows(src, pieces, spec, 10, 17);
  img::rotate_rows(src, pieces, spec, 17, 30);
  EXPECT_TRUE(whole == pieces);
}

TEST(Rotate, ShapeMismatchThrows) {
  const img::Image src = img::make_test_rgb(8, 8, 3);
  img::Image bad(8, 9, 3);
  EXPECT_THROW(img::rotate(src, bad, img::RotateSpec::degrees(5)),
               std::invalid_argument);
}

TEST(Rotate, LargeAngleFillsClippedCornersWithZero) {
  img::Image src(16, 16, 1);
  src.fill(200);
  img::Image dst(16, 16, 1);
  img::rotate(src, dst, img::RotateSpec::degrees(45));
  // Corners rotate out of frame: destination corners sample outside → 0.
  EXPECT_EQ(dst.at(0, 0), 0);
  EXPECT_EQ(dst.at(15, 15), 0);
  // Center remains covered.
  EXPECT_NEAR(dst.at(8, 8), 200, 2);
}

} // namespace
