// analyze_trace — offline analysis of Chrome trace-event JSON exports
// (OSS_TRACE_OUT / Runtime::trace_to / TraceSystem::write_chrome_json).
//
//   analyze_trace trace.json          per-label / per-worker style summary
//   analyze_trace --span trace.json   work/span/parallelism (critical path),
//                                     recomputed offline from the recorded
//                                     run spans and dependency edges — the
//                                     numbers oss::prof maintains online
//
// The --span output's last line is machine-parseable:
//
//   work_ns=<N> span_ns=<N> parallelism=<F>
//
// and is what tests/test_prof.cpp checks against Runtime::profile().
// Dependency edges are only present in OSS_TRACE=full exports; on an
// exec-mode trace the tool warns and the "span" degrades to the longest
// single task.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "ompss/trace_analysis.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--span] trace.json\n", argv0);
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  bool span_mode = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--span") == 0) {
      span_mode = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      return usage(argv[0]);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path == nullptr) return usage(argv[0]);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "analyze_trace: cannot open '%s'\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  oss::ParsedTrace parsed;
  try {
    parsed = oss::parse_chrome_trace(buf.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "analyze_trace: '%s' is not a Chrome trace: %s\n",
                 path, e.what());
    return 1;
  }
  if (parsed.tasks.empty()) {
    std::fprintf(stderr, "analyze_trace: '%s' holds no task spans\n", path);
    return 1;
  }
  if (parsed.edges.empty()) {
    std::fprintf(stderr,
                 "analyze_trace: warning: no dependency edges in '%s' "
                 "(exec-mode trace?) — span degrades to the longest task; "
                 "record with OSS_TRACE=full for the real critical path\n",
                 path);
  }

  const oss::SpanSummary s = oss::compute_work_span(parsed.tasks, parsed.edges);
  if (span_mode) {
    std::fputs(s.to_string().c_str(), stdout);
    std::printf("work_ns=%llu span_ns=%llu parallelism=%.4f\n",
                static_cast<unsigned long long>(s.work_ns),
                static_cast<unsigned long long>(s.span_ns), s.parallelism());
    return 0;
  }

  // Default view: per-label aggregates over the parsed spans (the classic
  // analyze_trace report), followed by the one-line span verdict.
  struct Agg {
    std::uint64_t count = 0, total = 0, min = ~std::uint64_t{0}, max = 0;
  };
  std::map<std::string, Agg> labels;
  std::uint64_t first = ~std::uint64_t{0}, last = 0;
  for (const oss::SpanTask& t : parsed.tasks) {
    const std::uint64_t dur = t.end_ns - t.begin_ns;
    Agg& a = labels[t.label.empty() ? "(unlabeled)" : t.label];
    ++a.count;
    a.total += dur;
    a.min = std::min(a.min, dur);
    a.max = std::max(a.max, dur);
    first = std::min(first, t.begin_ns);
    last = std::max(last, t.end_ns);
  }
  std::printf("trace: %zu tasks, %zu edges, makespan %llu us\n",
              parsed.tasks.size(), parsed.edges.size(),
              static_cast<unsigned long long>((last - first) / 1000));
  std::printf("labels (by total time):\n");
  for (const auto& [label, a] : labels) {
    std::printf("  %s: n=%llu total=%lluus mean=%lluus min=%lluus max=%lluus\n",
                label.c_str(), static_cast<unsigned long long>(a.count),
                static_cast<unsigned long long>(a.total / 1000),
                static_cast<unsigned long long>(a.total / a.count / 1000),
                static_cast<unsigned long long>(a.min / 1000),
                static_cast<unsigned long long>(a.max / 1000));
  }
  std::fputs(s.to_string().c_str(), stdout);
  return 0;
}
