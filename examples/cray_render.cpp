// cray_render — a small c-ray-style command-line raytracer.
//
// Reads a scene in the c-ray text format (or uses a built-in demo scene),
// renders it with OmpSs row-block tasks, and writes a PPM.
//
//   $ ./cray_render [scene.txt] [out.ppm] [width] [height] [threads]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_core/timer.hpp"
#include "img/ppm.hpp"
#include "ompss/ompss.hpp"
#include "raytrace/raytrace.hpp"

namespace {

const char* kDemoScene =
    "# demo scene: three spheres over a ground plane sphere\n"
    "s 0 -1004 0 1000  0.35 0.45 0.35  10 0.05\n"
    "s -2.2 -1.5 0.5 1.4  0.9 0.3 0.25  40 0.3\n"
    "s 1.0 -2.0 -1.0 1.0  0.25 0.5 0.9  60 0.0\n"
    "s 2.6 -1.2 1.8 1.6  0.9 0.8 0.3  30 0.4\n"
    "l -8 8 -6\n"
    "l 6 10 -4\n"
    "c 0 1 -9 50 0 -1 0\n";

} // namespace

int main(int argc, char** argv) {
  const std::string scene_path = argc > 1 ? argv[1] : "";
  const std::string out_path = argc > 2 ? argv[2] : "cray_out.ppm";
  const int width = argc > 3 ? std::atoi(argv[3]) : 320;
  const int height = argc > 4 ? std::atoi(argv[4]) : 240;
  const std::size_t threads = argc > 5 ? static_cast<std::size_t>(std::atoi(argv[5])) : 4;

  std::string scene_text;
  if (scene_path.empty()) {
    std::printf("no scene file given: using the built-in demo scene\n");
    scene_text = kDemoScene;
  } else {
    std::ifstream f(scene_path);
    if (!f) {
      std::fprintf(stderr, "cannot open scene file: %s\n", scene_path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    scene_text = ss.str();
  }

  cray::Scene scene;
  try {
    scene = cray::Scene::parse(scene_text);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scene parse error: %s\n", e.what());
    return 1;
  }
  std::printf("scene: %zu spheres, %zu lights; rendering %dx%d with %zu threads\n",
              scene.spheres.size(), scene.lights.size(), width, height, threads);

  cray::RenderOptions opts;
  opts.max_depth = 4;
  opts.supersample = 2;

  img::Image out(width, height, 3);
  oss::Runtime rt(threads);
  benchcore::WallTimer timer;
  constexpr int kBlock = 8;
  for (int lo = 0; lo < height; lo += kBlock) {
    const int hi = lo + kBlock < height ? lo + kBlock : height;
    rt.task("render_rows")
        .out(out.row(lo), static_cast<std::size_t>(hi - lo) * out.stride())
        .spawn([&, lo, hi] { cray::render_rows(scene, out, opts, lo, hi); });
  }
  rt.taskwait();
  std::printf("rendered in %.1f ms\n", timer.millis());

  img::write_pnm(out, out_path);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
