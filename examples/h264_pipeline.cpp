// h264_pipeline — runnable version of the paper's Listing 1 case study.
//
// Encodes a synthetic sequence, then decodes it with the 5-stage OmpSs
// pipeline (read → parse → entropy-decode → reconstruct → output) using
// circular-buffer renaming, `taskwait_on` loop control, and critical-
// section-guarded PIB/DPB buffers — and verifies the decoded checksums
// against the encoder's reconstruction.
//
//   $ ./h264_pipeline [frames] [threads]
#include <cstdio>
#include <cstdlib>

#include "apps/h264dec/h264dec_app.hpp"
#include "bench_core/timer.hpp"

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::size_t threads = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;

  std::printf("encoding %d synthetic frames (320x192, gop 8)...\n", frames);
  video::EncoderConfig ec;
  ec.width = 320;
  ec.height = 192;
  ec.frames = frames > 0 ? frames : 1;
  const video::EncodeResult enc = video::encode_video(ec);
  std::printf("bitstream: %zu frames, %zu bytes total\n",
              enc.video.frames.size(), enc.video.total_bytes());

  apps::H264Workload w;
  w.video = enc.video;
  w.expected_checksums = enc.recon_checksums;
  w.pipeline_depth = 4; // the circular buffer N of Listing 1
  w.mb_group = 2;

  std::printf("decoding with the Listing-1 OmpSs pipeline (%zu threads, "
              "renaming depth %d)...\n",
              threads, w.pipeline_depth);
  benchcore::WallTimer timer;
  const auto checksums = apps::h264dec_ompss(w, threads);
  const double ms = timer.millis();

  if (checksums == w.expected_checksums) {
    std::printf("OK: %zu frames decoded bit-exactly in %.1f ms (%.1f fps)\n",
                checksums.size(), ms, checksums.size() / (ms / 1e3));
  } else {
    std::printf("MISMATCH: decoded output differs from encoder reconstruction!\n");
    return 1;
  }

  std::printf("\nwhy this works (paper §3):\n"
              " - tasks are spawned before their inputs exist; the runtime\n"
              "   resolves dependencies as producers finish\n"
              " - WAR/WAW hazards across iterations are killed by manual\n"
              "   renaming through %d circular buffer slots\n"
              " - the DPB/PIB dependencies are hidden from the task\n"
              "   specifications and guarded by critical sections instead\n"
              " - `taskwait_on(read_context)` gates the EOF check without\n"
              "   draining the pipeline\n",
              w.pipeline_depth);
  return 0;
}
