// taskgraph_dot — visualize the dependency graphs the runtime discovers.
//
// Builds two versions of a 4-stage, 6-iteration pipeline — one reusing a
// single buffer per stage (WAR/WAW hazards serialize everything) and one
// with circular-buffer renaming (parallelism restored) — and prints both
// task graphs as Graphviz DOT.  The visual difference is the paper's
// second observation (§3) in one picture.
//
// Recording a graph also turns on critical-path tracking (oss::prof), so
// the nodes and edges on the span — the longest dependency chain — come
// out filled crimson: in graph 1 that chain threads through every task,
// in graph 2 it collapses to one stage's RAW backbone.
//
//   $ ./taskgraph_dot > graphs.dot && dot -Tpng -O graphs.dot
#include <array>
#include <cstdio>

#include "ompss/ompss.hpp"

namespace {

std::string build_pipeline_graph(bool renamed) {
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(2);
  cfg.record_graph = true;
  oss::Runtime rt(cfg);

  constexpr int kIters = 6;
  constexpr int N = 3;
  struct Stage { int ctx = 0; };
  Stage s1, s2;
  std::array<int, N> slots{};
  int single_slot = 0;

  for (int k = 0; k < kIters; ++k) {
    int& slot = renamed ? slots[static_cast<std::size_t>(k % N)] : single_slot;
    rt.task("produce").inout(s1).out(slot).spawn([] {});
    rt.task("consume").inout(s2).in(slot).spawn([] {});
  }
  rt.taskwait();
  return rt.export_graph_dot();
}

} // namespace

int main() {
  std::printf("// Graph 1: single shared buffer — WAR/WAW edges serialize the\n"
              "// pipeline (red/blue dashed edges everywhere).\n%s\n",
              build_pipeline_graph(false).c_str());
  std::printf("// Graph 2: circular renaming over 3 slots — only the true RAW\n"
              "// dataflow remains; iterations overlap.\n%s",
              build_pipeline_graph(true).c_str());
  return 0;
}
