// reduction_demo — the three ways to accumulate shared state with tasks.
//
// Builds a histogram over random data three times:
//   1. inout        — every task chains on the histogram: fully serial
//   2. commutative  — tasks run in any order, one at a time (runtime lock)
//   3. concurrent   — tasks run simultaneously, using atomic bins
// and verifies all three produce the same histogram.
//
//   $ ./reduction_demo [items] [threads]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_core/timer.hpp"
#include "ompss/ompss.hpp"

namespace {

constexpr int kBins = 16;

std::vector<std::uint32_t> make_data(std::size_t n) {
  std::vector<std::uint32_t> data(n);
  std::uint32_t s = 12345;
  for (auto& d : data) {
    s ^= s << 13;
    s ^= s >> 17;
    s ^= s << 5;
    d = s;
  }
  return data;
}

} // namespace

int main(int argc, char** argv) {
  const std::size_t items = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 200000;
  const std::size_t threads = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 4;
  const std::size_t chunk = 4096;

  const auto data = make_data(items);
  std::printf("histogram of %zu items into %d bins, %zu threads, chunk %zu\n\n",
              items, kBins, threads, chunk);

  // 1. inout: serial chain.
  std::vector<long> h1(kBins, 0);
  double t1;
  {
    oss::Runtime rt(threads);
    benchcore::WallTimer timer;
    oss::spawn_for(rt, 0, items, chunk,
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t i = lo; i < hi; ++i) h1[data[i] % kBins]++;
                   },
                   [&](std::size_t, std::size_t) {
                     return oss::AccessList{oss::inout(h1.data(), h1.size())};
                   },
                   "hist_inout");
    rt.taskwait();
    t1 = timer.millis();
  }

  // 2. commutative: any order, mutually exclusive.
  std::vector<long> h2(kBins, 0);
  double t2;
  {
    oss::Runtime rt(threads);
    benchcore::WallTimer timer;
    oss::spawn_for(rt, 0, items, chunk,
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t i = lo; i < hi; ++i) h2[data[i] % kBins]++;
                   },
                   [&](std::size_t, std::size_t) {
                     return oss::AccessList{
                         oss::commutative(h2.data(), h2.size())};
                   },
                   "hist_commutative");
    rt.taskwait();
    t2 = timer.millis();
  }

  // 3. concurrent: simultaneous, atomic bins.
  std::vector<std::atomic<long>> h3(kBins);
  double t3;
  {
    oss::Runtime rt(threads);
    benchcore::WallTimer timer;
    oss::spawn_for(rt, 0, items, chunk,
                   [&](std::size_t lo, std::size_t hi) {
                     for (std::size_t i = lo; i < hi; ++i) {
                       h3[data[i] % kBins].fetch_add(1, std::memory_order_relaxed);
                     }
                   },
                   [&](std::size_t, std::size_t) {
                     return oss::AccessList{
                         oss::concurrent(h3.data(), h3.size())};
                   },
                   "hist_concurrent");
    rt.taskwait();
    t3 = timer.millis();
  }

  bool equal = true;
  for (int b = 0; b < kBins; ++b) {
    if (h1[b] != h2[b] || h1[b] != h3[b].load()) equal = false;
  }
  std::printf("inout (serial chain): %8.2f ms\n", t1);
  std::printf("commutative:          %8.2f ms\n", t2);
  std::printf("concurrent:           %8.2f ms\n", t3);
  std::printf("histograms identical: %s\n", equal ? "yes" : "NO (bug!)");
  return equal ? 0 : 1;
}
