// kmeans_demo — data-parallel phases + reduction expressed as tasks.
//
// Clusters synthetic blob data with the OmpSs k-means variant and reports
// convergence, comparing against the sequential reference.
//
//   $ ./kmeans_demo [points] [k] [threads]
#include <cstdio>
#include <cstdlib>

#include "apps/kmeans/kmeans_app.hpp"
#include "bench_core/timer.hpp"

int main(int argc, char** argv) {
  const std::size_t points = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 20000;
  const std::size_t k = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 8;
  const std::size_t threads = argc > 3 ? static_cast<std::size_t>(std::atol(argv[3])) : 4;

  apps::KmeansWorkload w;
  w.points = cluster::make_blobs(points, 8, k, 13u);
  w.k = k;
  w.iters = 10;
  w.block_points = 1024;

  std::printf("k-means: %zu points, dim 8, k=%zu, %d Lloyd iterations\n",
              points, k, w.iters);

  benchcore::WallTimer t_seq;
  const auto ref = apps::kmeans_app_seq(w);
  const double seq_ms = t_seq.millis();

  benchcore::WallTimer t_oss;
  const auto par = apps::kmeans_app_ompss(w, threads);
  const double oss_ms = t_oss.millis();

  std::printf("sequential: %.1f ms, inertia %.3f\n", seq_ms, ref.inertia);
  std::printf("ompss (%zu threads): %.1f ms, inertia %.3f\n", threads, oss_ms,
              par.inertia);
  std::printf("assignments identical: %s\n",
              ref.assignment == par.assignment ? "yes" : "NO (bug!)");

  // Cluster sizes from the parallel run.
  std::vector<std::size_t> sizes(k, 0);
  for (auto a : par.assignment) sizes[a]++;
  std::printf("cluster sizes:");
  for (std::size_t c = 0; c < k; ++c) std::printf(" %zu", sizes[c]);
  std::printf("\n");
  return ref.assignment == par.assignment ? 0 : 1;
}
