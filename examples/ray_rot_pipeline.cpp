// ray_rot_pipeline — the chained ray-rot workload as a standalone demo.
//
// Renders a procedural scene, rotates the result, writes both images as
// PPM files, and prints the scheduler statistics that explain the paper's
// ray-rot result (dependent tasks placed back-to-back on the same core).
//
//   $ ./ray_rot_pipeline [out_prefix]
#include <cstdio>
#include <string>

#include "apps/ray_rot/ray_rot.hpp"
#include "img/ppm.hpp"
#include "ompss/ompss.hpp"

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "ray_rot";

  auto w = apps::RayRotWorkload::make(benchcore::Scale::Small);
  std::printf("ray-rot: render %dx%d procedural scene, rotate by 8 degrees\n",
              w.width, w.height);

  // Run under an instrumented runtime to show the locality behaviour.
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(4);
  cfg.scheduler = oss::SchedulerPolicy::Locality;
  oss::Runtime rt(cfg);

  img::Image rendered(w.width, w.height, 3);
  img::Image rotated(w.width, w.height, 3);
  const int block = w.block_rows;
  for (int lo = 0; lo < w.height; lo += block) {
    const int hi = std::min(w.height, lo + block);
    rt.task("render")
        .out(rendered.row(lo), static_cast<std::size_t>(hi - lo) * rendered.stride())
        .spawn([&, lo, hi] { cray::render_rows(w.scene, rendered, w.opts, lo, hi); });
  }
  for (int lo = 0; lo < w.height; lo += block) {
    const int hi = std::min(w.height, lo + block);
    const auto [blo, bhi] = apps::rotate_source_band(w.spec, w.width, w.height, lo, hi);
    rt.task("rotate")
        .in(rendered.row(blo), static_cast<std::size_t>(bhi - blo) * rendered.stride())
        .out(rotated.row(lo), static_cast<std::size_t>(hi - lo) * rotated.stride())
        .spawn([&, lo, hi] { img::rotate_rows(rendered, rotated, w.spec, lo, hi); });
  }
  rt.taskwait();

  img::write_pnm(rendered, prefix + "_rendered.ppm");
  img::write_pnm(rotated, prefix + "_rotated.ppm");
  std::printf("wrote %s_rendered.ppm and %s_rotated.ppm\n", prefix.c_str(),
              prefix.c_str());

  const auto stats = rt.stats();
  std::printf("\nscheduler behaviour (locality policy):\n%s", stats.to_string().c_str());
  std::printf("\nlocal-queue pops are rotate tasks running back-to-back with\n"
              "the render task that produced their input band — the cache\n"
              "locality effect behind the paper's ray-rot result.\n");
  return 0;
}
