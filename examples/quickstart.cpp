// quickstart — the smallest complete OmpSs-style program, in the fluent
// task-builder style.
//
// Builds a tiny dataflow: two producers, a combiner, and a chain, all
// expressed purely through in/out/inout declarations — no explicit
// synchronization.  Shows the three ways to wait (a TaskHandle, a task
// group, a taskwait) and prints the runtime's view of what happened.
//
//   $ ./quickstart
#include <cstdio>

#include "ompss/ompss.hpp"

int main() {
  // 4 threads total (the calling thread helps while it waits).
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(4);
  cfg.record_graph = true;
  oss::Runtime rt(cfg);

  double a = 0, b = 0, sum = 0;
  std::printf("spawning a diamond: produce a, produce b, combine, scale...\n");

  // Two independent producers — may run in parallel.  `task(label)` opens a
  // declaration; each chained call is one OmpSs clause; `spawn` finalizes
  // it and returns a first-class handle.
  oss::TaskHandle ha =
      rt.task("produce_a").out(a).spawn([&] { a = 20.0; });
  rt.task("produce_b").out(b).spawn([&] { b = 22.0; });

  // Consumer of both — the runtime discovers the RAW dependencies from the
  // overlapping memory regions, no manual ordering needed.
  oss::TaskHandle combined =
      rt.task("combine").in(a).in(b).out(sum).spawn([&] { sum = a + b; });

  // A chain on `sum`: inout serializes the three scale steps.  A TaskGroup
  // scopes them: leaving the block waits for exactly these tasks and
  // rethrows the first exception any of them threw.  Group tasks only
  // match accesses among themselves, so the first link bridges to the
  // ambient combine task with an explicit `.after(handle)` edge.
  {
    oss::TaskGroup scaling(rt);
    for (int i = 0; i < 3; ++i) {
      scaling.task("scale").inout(sum).after(combined).spawn(
          [&] { sum *= 1.0; });
    }
  } // joins here

  // Handles support point waits (`ha.wait()`) and explicit edges: this task
  // declares no region overlapping the producer, yet still runs after it.
  bool a_was_done = false;
  rt.task("audit").after(ha).spawn([&] { a_was_done = ha.done(); });

  // taskwait = wait for all tasks spawned above (and rethrow errors).
  rt.taskwait();
  std::printf("sum = %.1f (expected 42.0), audit saw produce_a done: %s\n\n",
              sum, a_was_done ? "yes" : "no");

  const oss::StatsSnapshot stats = rt.stats();
  std::printf("runtime statistics:\n%s\n", stats.to_string().c_str());
  std::printf("task graph (Graphviz DOT — pipe into `dot -Tpng`):\n%s",
              rt.export_graph_dot().c_str());
  return 0;
}
