// quickstart — the smallest complete OmpSs-style program.
//
// Builds a tiny dataflow: two producers, a combiner, and a chain, all
// expressed purely through in/out/inout annotations — no explicit
// synchronization.  Then prints the runtime's view of what happened.
//
//   $ ./quickstart
#include <cstdio>

#include "ompss/ompss.hpp"

int main() {
  // 4 threads total (the calling thread helps while it waits).
  oss::RuntimeConfig cfg = oss::RuntimeConfig::with_threads(4);
  cfg.record_graph = true;
  oss::Runtime rt(cfg);

  double a = 0, b = 0, sum = 0;
  std::printf("spawning a diamond: produce a, produce b, combine, scale...\n");

  // Two independent producers — may run in parallel.
  rt.spawn({oss::out(a)}, [&] { a = 20.0; }, "produce_a");
  rt.spawn({oss::out(b)}, [&] { b = 22.0; }, "produce_b");

  // Consumer of both — the runtime discovers the RAW dependencies from the
  // overlapping memory regions, no manual ordering needed.
  rt.spawn({oss::in(a), oss::in(b), oss::out(sum)}, [&] { sum = a + b; },
           "combine");

  // A chain on `sum`: inout serializes the three scale steps.
  for (int i = 0; i < 3; ++i) {
    rt.spawn({oss::inout(sum)}, [&] { sum *= 1.0; }, "scale");
  }

  // taskwait = wait for all the tasks spawned above (and rethrow errors).
  rt.taskwait();
  std::printf("sum = %.1f (expected 42.0)\n\n", sum);

  const oss::StatsSnapshot stats = rt.stats();
  std::printf("runtime statistics:\n%s\n", stats.to_string().c_str());
  std::printf("task graph (Graphviz DOT — pipe into `dot -Tpng`):\n%s",
              rt.export_graph_dot().c_str());
  return 0;
}
